#include "risk/catalog.h"

#include <stdexcept>

namespace agrarsec::risk {

std::vector<ForestryCharacteristic> table1_characteristics() {
  return {
      {"Remote and Isolated Locations",
       "Operations in remote areas with limited connectivity; secure "
       "communication and data protection are hard to guarantee."},
      {"Autonomous Machinery",
       "Drones and robots must be secured against unauthorized access or "
       "interference."},
      {"Natural Disasters",
       "Wildfires, floods and storms; cybersecurity must cover disaster "
       "recovery and business continuity."},
      {"Data Privacy and Compliance",
       "Land ownership, environmental assessment and legal-compliance data "
       "must stay private and compliant."},
      {"Remote Monitoring and Control",
       "Remote management systems must be protected from unauthorized "
       "access and disruption."},
      {"Threat Profile",
       "Company-level threat profiles: threat agents and control measures "
       "must be understood."},
      {"Confidentiality of Operations",
       "Some operations (e.g. near military sites) are confidential; "
       "operations and communications must stay confidential."},
      {"Heavy Machinery",
       "Harvesters and forwarders raise safety risk; threats that could "
       "compromise safety are the gravest concern."},
  };
}

ItemDefinition forestry_item() {
  ItemDefinition item;
  item.name = "autonomous-forestry-worksite";
  item.mission =
      "transport logs from harvest piles to the landing area with an "
      "autonomous forwarder under drone-assisted people detection";

  std::uint64_t next_id = 1;
  auto add = [&](const std::string& name, const std::string& description,
                 AssetCategory category, std::vector<SecurityProperty> props) {
    Asset a;
    a.id = AssetId{next_id++};
    a.name = name;
    a.description = description;
    a.category = category;
    a.properties = std::move(props);
    item.assets.push_back(std::move(a));
  };

  add("m2m-radio-link", "machine-to-machine radio (forwarder/drone/operator)",
      AssetCategory::kCommunication,
      {SecurityProperty::kIntegrity, SecurityProperty::kAvailability,
       SecurityProperty::kAuthenticity});
  add("drone-detection-link", "drone people-detection report channel",
      AssetCategory::kCommunication,
      {SecurityProperty::kIntegrity, SecurityProperty::kAvailability,
       SecurityProperty::kAuthenticity});
  add("estop-function", "distributed emergency-stop command path",
      AssetCategory::kControl,
      {SecurityProperty::kIntegrity, SecurityProperty::kAvailability,
       SecurityProperty::kAuthenticity});
  add("people-detection-chain", "lidar/camera perception on forwarder + drone",
      AssetCategory::kSensing,
      {SecurityProperty::kIntegrity, SecurityProperty::kAvailability});
  add("gnss-navigation", "GNSS-based localization of the forwarder",
      AssetCategory::kSensing,
      {SecurityProperty::kIntegrity, SecurityProperty::kAvailability});
  add("mission-control", "route/task assignment from the operator station",
      AssetCategory::kControl,
      {SecurityProperty::kIntegrity, SecurityProperty::kAuthenticity,
       SecurityProperty::kAvailability});
  add("forwarder-firmware", "forwarder ECU software + boot chain",
      AssetCategory::kPlatform,
      {SecurityProperty::kIntegrity, SecurityProperty::kAuthenticity});
  add("drone-firmware", "drone flight controller + perception software",
      AssetCategory::kPlatform,
      {SecurityProperty::kIntegrity, SecurityProperty::kAuthenticity});
  add("pki-credentials", "machine identity keys and certificates",
      AssetCategory::kPlatform,
      {SecurityProperty::kConfidentiality, SecurityProperty::kIntegrity});
  add("site-data-store", "maps, land ownership, environmental and yield data",
      AssetCategory::kData,
      {SecurityProperty::kConfidentiality, SecurityProperty::kIntegrity});
  add("operations-telemetry", "machine positions, routes and activity logs",
      AssetCategory::kData,
      {SecurityProperty::kConfidentiality});
  add("audit-log", "site event/alert log used for incident response",
      AssetCategory::kData,
      {SecurityProperty::kIntegrity});
  return item;
}

std::vector<ThreatScenario> forestry_threats(const ItemDefinition& item) {
  std::uint64_t next_id = 1;
  std::vector<ThreatScenario> threats;

  auto asset_id = [&](const std::string& name) {
    const Asset* a = item.find(name);
    if (a == nullptr) throw std::logic_error("unknown asset: " + name);
    return a->id;
  };

  auto add = [&](const std::string& asset, const std::string& name,
                 const std::string& description, Stride stride,
                 SecurityProperty violated, DamageScenario damage,
                 AttackPotential potential, const std::string& characteristic) {
    ThreatScenario t;
    t.id = ThreatId{next_id++};
    t.asset = asset_id(asset);
    t.name = name;
    t.description = description;
    t.stride = stride;
    t.violated = violated;
    t.damage = damage;
    t.potential = potential;
    t.characteristic = characteristic;
    threats.push_back(std::move(t));
  };

  using IL = ImpactLevel;
  auto dmg = [](IL safety, IL financial, IL operational, IL privacy,
                const std::string& text) {
    DamageScenario d;
    d.description = text;
    d.safety = safety;
    d.financial = financial;
    d.operational = operational;
    d.privacy = privacy;
    return d;
  };

  // --- Remote and Isolated Locations ---
  add("m2m-radio-link", "link-eavesdropping",
      "passive interception of plaintext machine traffic in the open band",
      Stride::kInformationDisclosure, SecurityProperty::kConfidentiality,
      dmg(IL::kNegligible, IL::kModerate, IL::kModerate, IL::kMajor,
          "operational patterns and positions leak"),
      AttackPotential{0, 0, 0, 0, 0}, "Remote and Isolated Locations");
  add("m2m-radio-link", "rogue-node-join",
      "attacker radio joins the isolated site network unnoticed (no NOC)",
      Stride::kSpoofing, SecurityProperty::kAuthenticity,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "unauthenticated participant can issue machine messages"),
      AttackPotential{1, 3, 0, 1, 0}, "Remote and Isolated Locations");
  add("pki-credentials", "stale-revocation",
      "revoked credentials stay usable because CRLs cannot be fetched",
      Stride::kElevationOfPrivilege, SecurityProperty::kIntegrity,
      dmg(IL::kMajor, IL::kModerate, IL::kModerate, IL::kNegligible,
          "decommissioned/compromised machine keeps site access"),
      AttackPotential{4, 3, 3, 4, 0}, "Remote and Isolated Locations");

  // --- Autonomous Machinery ---
  add("estop-function", "estop-replay",
      "captured stop/clear frames replayed to freeze or un-freeze machines",
      Stride::kSpoofing, SecurityProperty::kAuthenticity,
      dmg(IL::kSevere, IL::kModerate, IL::kMajor, IL::kNegligible,
          "forwarder resumes while a person is in the critical zone"),
      AttackPotential{0, 3, 0, 1, 0}, "Autonomous Machinery");
  add("mission-control", "forged-mission",
      "spoofed mission command reroutes the autonomous forwarder",
      Stride::kSpoofing, SecurityProperty::kAuthenticity,
      dmg(IL::kSevere, IL::kMajor, IL::kMajor, IL::kNegligible,
          "machine driven into the manual harvesting area"),
      AttackPotential{1, 3, 3, 1, 0}, "Autonomous Machinery");
  add("drone-detection-link", "detection-suppression",
      "drone people-detection reports dropped or delayed (de-auth flood)",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kSevere, IL::kNegligible, IL::kMajor, IL::kNegligible,
          "collaborative safety cover silently lost"),
      AttackPotential{1, 3, 0, 1, 4}, "Autonomous Machinery");
  add("people-detection-chain", "lidar-ghosting",
      "spoofed lidar returns create phantom people (relay attack)",
      Stride::kTampering, SecurityProperty::kIntegrity,
      dmg(IL::kModerate, IL::kModerate, IL::kMajor, IL::kNegligible,
          "nuisance stops; availability-driven pressure to disable safety"),
      AttackPotential{4, 6, 3, 4, 7}, "Autonomous Machinery");
  add("people-detection-chain", "camera-blinding",
      "laser/IR dazzle of the forward camera",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kSevere, IL::kNegligible, IL::kModerate, IL::kNegligible,
          "single perception channel lost near workers"),
      AttackPotential{1, 3, 0, 4, 4}, "Autonomous Machinery");

  // --- Natural Disasters ---
  add("site-data-store", "disaster-data-loss",
      "wildfire/flood destroys on-site storage; no tested recovery",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kNegligible, IL::kMajor, IL::kMajor, IL::kModerate,
          "maps/compliance records unrecoverable"),
      AttackPotential{0, 0, 0, 10, 0}, "Natural Disasters");
  add("m2m-radio-link", "disaster-window-attack",
      "attacks mounted during storm recovery when monitoring is degraded",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "no incident response while the site is in recovery mode"),
      AttackPotential{4, 3, 3, 10, 0}, "Natural Disasters");

  // --- Data Privacy and Compliance ---
  add("site-data-store", "landowner-data-exfil",
      "exfiltration of land-ownership and environmental assessment data",
      Stride::kInformationDisclosure, SecurityProperty::kConfidentiality,
      dmg(IL::kNegligible, IL::kMajor, IL::kModerate, IL::kSevere,
          "GDPR-relevant personal/legal data disclosed"),
      AttackPotential{4, 3, 3, 1, 0}, "Data Privacy and Compliance");
  add("site-data-store", "compliance-record-tamper",
      "tampering with harvest/environmental compliance records",
      Stride::kTampering, SecurityProperty::kIntegrity,
      dmg(IL::kNegligible, IL::kMajor, IL::kModerate, IL::kMajor,
          "legal exposure; certification (e.g. FSC) jeopardized"),
      AttackPotential{4, 3, 7, 1, 0}, "Data Privacy and Compliance");

  // --- Remote Monitoring and Control ---
  add("mission-control", "operator-station-hijack",
      "compromise of the remote operator station (credential theft)",
      Stride::kElevationOfPrivilege, SecurityProperty::kAuthenticity,
      dmg(IL::kSevere, IL::kMajor, IL::kSevere, IL::kModerate,
          "full legitimate control over all site machines"),
      AttackPotential{10, 6, 7, 4, 0}, "Remote Monitoring and Control");
  add("m2m-radio-link", "telemetry-spoof",
      "forged telemetry hides a machine's true position from monitoring",
      Stride::kSpoofing, SecurityProperty::kIntegrity,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "operator decisions based on false site picture"),
      AttackPotential{1, 3, 0, 1, 0}, "Remote Monitoring and Control");
  add("mission-control", "console-handshake-bruteforce",
      "repeated forged handshakes probe the console's PKI-authenticated "
      "control channel for weak or stolen operator credentials",
      Stride::kSpoofing, SecurityProperty::kAuthenticity,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "persistent probe pressure on the operator control plane"),
      AttackPotential{1, 3, 3, 1, 0}, "Remote Monitoring and Control");
  add("mission-control", "console-command-flood",
      "authenticated-but-compromised peer floods control verbs to starve "
      "the console and mask a concurrent physical attack",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kMajor, IL::kNegligible, IL::kMajor, IL::kNegligible,
          "operator loses the console while machines keep running"),
      AttackPotential{1, 3, 0, 1, 0}, "Remote Monitoring and Control");
  add("mission-control", "console-replay-burst",
      "captured sealed control records replayed in bursts to probe the "
      "anti-replay window of the secure session",
      Stride::kSpoofing, SecurityProperty::kAuthenticity,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "replayed pause/resume verbs would yank machines around"),
      AttackPotential{1, 3, 0, 1, 0}, "Remote Monitoring and Control");
  add("forwarder-firmware", "malicious-update",
      "unauthorized firmware pushed through the remote update path",
      Stride::kTampering, SecurityProperty::kIntegrity,
      dmg(IL::kSevere, IL::kSevere, IL::kSevere, IL::kModerate,
          "persistent attacker control of a 20-tonne machine"),
      AttackPotential{10, 6, 7, 4, 4}, "Remote Monitoring and Control");

  // --- Threat Profile ---
  add("operations-telemetry", "activist-tracking",
      "activists/competitors track harvesting activity via RF telemetry",
      Stride::kInformationDisclosure, SecurityProperty::kConfidentiality,
      dmg(IL::kNegligible, IL::kModerate, IL::kModerate, IL::kModerate,
          "operations interference, targeted protests/sabotage planning"),
      AttackPotential{1, 3, 0, 0, 0}, "Threat Profile");
  add("forwarder-firmware", "ransomware-fleet",
      "fleet-wide ransomware via shared maintenance tooling",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kModerate, IL::kSevere, IL::kSevere, IL::kNegligible,
          "season-critical operations halted for ransom"),
      AttackPotential{10, 6, 3, 4, 0}, "Threat Profile");

  // --- Confidentiality of Operations ---
  add("operations-telemetry", "sensitive-site-disclosure",
      "operation near protected/military terrain revealed by RF emissions",
      Stride::kInformationDisclosure, SecurityProperty::kConfidentiality,
      dmg(IL::kNegligible, IL::kMajor, IL::kModerate, IL::kSevere,
          "contractual/security breach of confidential operation"),
      AttackPotential{1, 3, 3, 1, 4}, "Confidentiality of Operations");
  add("drone-detection-link", "drone-video-interception",
      "interception of drone observation video",
      Stride::kInformationDisclosure, SecurityProperty::kConfidentiality,
      dmg(IL::kNegligible, IL::kModerate, IL::kModerate, IL::kMajor,
          "imagery of confidential site leaked"),
      AttackPotential{0, 3, 0, 0, 4}, "Confidentiality of Operations");

  // --- Heavy Machinery ---
  add("estop-function", "estop-suppression",
      "jamming/dropping of e-stop commands to a moving forwarder",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kSevere, IL::kModerate, IL::kMajor, IL::kNegligible,
          "stop command does not reach the machine near a person"),
      AttackPotential{1, 3, 0, 4, 4}, "Heavy Machinery");
  add("gnss-navigation", "gnss-spoof-walkoff",
      "slow GNSS spoofing walks the forwarder off its corridor",
      Stride::kSpoofing, SecurityProperty::kIntegrity,
      dmg(IL::kSevere, IL::kMajor, IL::kMajor, IL::kNegligible,
          "machine leaves the cleared corridor towards workers"),
      AttackPotential{4, 6, 3, 4, 7}, "Heavy Machinery");
  add("gnss-navigation", "gnss-jamming",
      "wideband GNSS jamming blinds localization",
      Stride::kDenialOfService, SecurityProperty::kAvailability,
      dmg(IL::kMajor, IL::kModerate, IL::kMajor, IL::kNegligible,
          "navigation falls back to dead reckoning; drift accumulates"),
      AttackPotential{0, 3, 0, 1, 4}, "Heavy Machinery");
  add("audit-log", "incident-log-tamper",
      "post-incident tampering with machine event logs",
      Stride::kRepudiation, SecurityProperty::kIntegrity,
      dmg(IL::kModerate, IL::kMajor, IL::kModerate, IL::kModerate,
          "liability and root-cause analysis defeated after an accident"),
      AttackPotential{4, 3, 3, 4, 0}, "Heavy Machinery");

  return threats;
}

Tara build_forestry_tara() {
  ItemDefinition item = forestry_item();
  std::vector<ThreatScenario> threats = forestry_threats(item);
  Tara tara{std::move(item)};
  for (auto& t : threats) tara.add_threat(std::move(t));
  tara.assess(control_catalogue());
  return tara;
}

}  // namespace agrarsec::risk
