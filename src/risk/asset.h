// ISO/SAE 21434 item definition: assets and their cybersecurity
// properties. The forestry worksite item (forwarder + drone + operator
// station + radio links) is built in catalog.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"

namespace agrarsec::risk {

/// Security property whose loss a threat scenario realizes.
enum class SecurityProperty : std::uint8_t {
  kConfidentiality = 0,
  kIntegrity = 1,
  kAvailability = 2,
  kAuthenticity = 3,
};

[[nodiscard]] std::string_view security_property_name(SecurityProperty p);

enum class AssetCategory : std::uint8_t {
  kCommunication = 0,  ///< radio links, protocols
  kSensing = 1,        ///< lidar/camera/GNSS chains
  kControl = 2,        ///< drive/e-stop/mission control functions
  kData = 3,           ///< maps, logs, land-ownership data
  kPlatform = 4,       ///< ECU firmware, boot chain, keys
};

[[nodiscard]] std::string_view asset_category_name(AssetCategory c);

struct Asset {
  AssetId id;
  std::string name;
  std::string description;
  AssetCategory category = AssetCategory::kCommunication;
  std::vector<SecurityProperty> properties;  ///< properties worth protecting
};

/// The item under analysis (scope of the TARA).
struct ItemDefinition {
  std::string name;
  std::string mission;
  std::vector<Asset> assets;

  [[nodiscard]] const Asset* find(AssetId id) const;
  [[nodiscard]] const Asset* find(const std::string& name) const;
};

}  // namespace agrarsec::risk
