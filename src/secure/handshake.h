// Mutually-authenticated key agreement for machine-to-machine links —
// a SIGMA-style protocol: ephemeral X25519 exchange, certificate chains,
// Ed25519 signatures over the session transcript, session keys via
// HKDF-SHA256. Provides the "identification and authentication" and "data
// confidentiality" countermeasures IEC TS 63074 calls out (paper §IV-D).
//
//   I -> R : e_i
//   R -> I : e_r, chain_R, Sig_R(transcript || "resp")
//   I -> R : chain_I, Sig_I(transcript || "init")
//
// transcript = H("agrarsec-hs-v1" || e_i || e_r). Keys are derived as
// HKDF(salt=transcript, ikm=DH(e_i,e_r), info=direction).
#pragma once

#include <optional>
#include <string>

#include "core/result.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/session.h"

namespace agrarsec::secure {

/// Wire encodings of the three handshake flights.
struct HandshakeMsg1 {
  crypto::X25519Key ephemeral{};
  [[nodiscard]] core::Bytes encode() const;
  static std::optional<HandshakeMsg1> decode(std::span<const std::uint8_t> data);
};

struct HandshakeMsg2 {
  crypto::X25519Key ephemeral{};
  std::vector<pki::Certificate> chain;
  crypto::Ed25519Signature signature{};
  [[nodiscard]] core::Bytes encode() const;
  static std::optional<HandshakeMsg2> decode(std::span<const std::uint8_t> data);
};

struct HandshakeMsg3 {
  std::vector<pki::Certificate> chain;
  crypto::Ed25519Signature signature{};
  [[nodiscard]] core::Bytes encode() const;
  static std::optional<HandshakeMsg3> decode(std::span<const std::uint8_t> data);
};

/// Handshake driver for one side. Usage:
///   initiator: msg1 = start(); consume(msg2) -> msg3 + session
///   responder: respond(msg1) -> msg2; finish(msg3) -> session
class Handshake {
 public:
  /// `expected_peer`: require the peer leaf subject to match (empty = any
  /// subject passing trust validation).
  Handshake(const pki::Identity& identity, const pki::TrustStore& trust,
            core::SimTime now, std::string expected_peer = {});

  // --- initiator side ---
  [[nodiscard]] HandshakeMsg1 start(crypto::Drbg& drbg);
  core::Result<HandshakeMsg3> consume_msg2(const HandshakeMsg2& msg2);

  // --- responder side ---
  core::Result<HandshakeMsg2> respond(const HandshakeMsg1& msg1, crypto::Drbg& drbg);
  core::Status finish(const HandshakeMsg3& msg3);

  /// Available after consume_msg2 (initiator) / finish (responder).
  [[nodiscard]] Session take_session();
  [[nodiscard]] const std::string& peer_subject() const { return peer_subject_; }

 private:
  core::Bytes transcript_hash() const;
  core::Status validate_peer(const std::vector<pki::Certificate>& chain,
                             std::span<const std::uint8_t> signature,
                             std::string_view role_label);
  void derive_session(bool is_initiator);

  const pki::Identity& identity_;
  const pki::TrustStore& trust_;
  core::SimTime now_;
  std::string expected_peer_;

  std::array<std::uint8_t, 32> eph_private_{};
  crypto::X25519Key eph_public_{};
  crypto::X25519Key peer_ephemeral_{};
  crypto::X25519Key shared_{};
  std::string peer_subject_;
  std::optional<Session> session_;
  bool is_initiator_ = false;
};

/// Convenience: runs a complete in-memory handshake between two
/// identities and returns the two session endpoints. Fails if either side
/// rejects the other.
struct SessionPair {
  Session initiator;
  Session responder;
};
core::Result<SessionPair> establish(const pki::Identity& initiator,
                                    const pki::Identity& responder,
                                    const pki::TrustStore& trust, core::SimTime now,
                                    crypto::Drbg& drbg);

}  // namespace agrarsec::secure
