// Signed over-the-air firmware update. Updates arrive at remote worksites
// over the machine-to-machine links (no backhaul — Table I: remote and
// isolated locations), so the update container must be self-authenticating:
// a signed manifest plus hash-chained chunks, verified before install, with
// anti-rollback through SecureBootRom versions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bytes.h"
#include "core/result.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"
#include "secure/boot.h"

namespace agrarsec::secure {

/// Signed description of an update.
struct UpdateManifest {
  std::string stage;           ///< which boot stage this replaces
  std::uint32_t version = 0;
  std::uint64_t total_size = 0;
  std::uint32_t chunk_size = 0;
  crypto::Sha256::Digest payload_hash{};
  /// Signature over the resulting BootImage (stage/version/payload hash),
  /// produced by the OEM signer and installed verbatim — the receiver
  /// never holds a signing key.
  crypto::Ed25519Signature image_signature{};
  crypto::Ed25519Signature signature{};  ///< over encode_signed()

  [[nodiscard]] core::Bytes encode_signed() const;
};

/// Produces a manifest + chunk list for `payload`.
struct PreparedUpdate {
  UpdateManifest manifest;
  std::vector<core::Bytes> chunks;
};
PreparedUpdate prepare_update(const std::string& stage, std::uint32_t version,
                              const core::Bytes& payload, std::uint32_t chunk_size,
                              const crypto::Ed25519KeyPair& signer);

/// Receiver-side state machine: begin(manifest) -> feed(chunks...) ->
/// finalize() -> BootImage ready for SecureBootRom.
class UpdateReceiver {
 public:
  explicit UpdateReceiver(crypto::Ed25519PublicKey signer_key);

  /// Validates the manifest signature and basic sanity.
  core::Status begin(const UpdateManifest& manifest);

  /// Appends the next chunk in order.
  core::Status feed(std::span<const std::uint8_t> chunk);

  /// Verifies the full payload hash and the OEM image signature, and
  /// emits the installable image.
  core::Result<BootImage> finalize();

  [[nodiscard]] bool in_progress() const { return in_progress_; }
  [[nodiscard]] std::uint64_t received_bytes() const { return buffer_.size(); }

 private:
  crypto::Ed25519PublicKey signer_key_;
  UpdateManifest manifest_;
  core::Bytes buffer_;
  bool in_progress_ = false;
};

}  // namespace agrarsec::secure
