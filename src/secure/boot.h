// Secure and measured boot for the machine ECUs — "system integrity"
// per IEC TS 63074. A boot chain is a sequence of stages (ROM-anchored),
// each carrying an Ed25519 signature from the firmware signer; booting
// verifies every stage, enforces anti-rollback via a monotonic counter,
// and extends a measurement register (TPM-PCR style) so the resulting
// platform state is attestable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bytes.h"
#include "core/result.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace agrarsec::secure {

/// One bootable stage (bootloader, RTOS, application, model bundle...).
struct BootImage {
  std::string name;
  std::uint32_t version = 0;        ///< monotonic per stage, anti-rollback
  core::Bytes payload;              ///< the "code"
  crypto::Ed25519Signature signature{};  ///< over encode_signed()

  [[nodiscard]] core::Bytes encode_signed() const;  ///< bytes the signature covers
  [[nodiscard]] crypto::Sha256::Digest measurement() const;
};

/// Signs an image in place with the firmware-signer key.
void sign_image(BootImage& image, const crypto::Ed25519KeyPair& signer);

/// Measurement register: extend-only (PCR semantics).
class MeasurementRegister {
 public:
  void extend(const crypto::Sha256::Digest& measurement);
  [[nodiscard]] const crypto::Sha256::Digest& value() const { return value_; }
  [[nodiscard]] std::string hex() const;

 private:
  crypto::Sha256::Digest value_{};  // starts all-zero
};

/// Result of a boot attempt.
struct BootReport {
  bool booted = false;
  std::string failed_stage;      ///< empty on success
  std::string failure_code;      ///< "bad_signature" | "rollback" | ...
  crypto::Sha256::Digest platform_measurement{};
  std::vector<std::string> booted_stages;
};

/// The verifying boot ROM. Holds the pinned signer key and the rollback
/// counters (simulated fuses).
class SecureBootRom {
 public:
  explicit SecureBootRom(crypto::Ed25519PublicKey signer_key);

  /// Attempts to boot a chain of stages, in order. Stops at the first
  /// verification failure (fail-closed). On success, commits rollback
  /// counters to the highest booted versions.
  BootReport boot(const std::vector<BootImage>& chain);

  /// Current anti-rollback floor for a stage (0 = none).
  [[nodiscard]] std::uint32_t rollback_floor(const std::string& stage) const;

  [[nodiscard]] std::uint64_t boot_attempts() const { return attempts_; }
  [[nodiscard]] std::uint64_t boot_failures() const { return failures_; }

 private:
  crypto::Ed25519PublicKey signer_key_;
  std::unordered_map<std::string, std::uint32_t> rollback_floors_;
  std::uint64_t attempts_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace agrarsec::secure
