// Tamper-evident audit log — the "audit-log" control of the risk
// catalogue and the evidence-collection duty of Regulation (EU) 2023/1230
// Annex III 1.1.9 ("the machinery shall collect evidence of a lawful or
// unlawful intervention"). Entries are hash-chained (each entry binds the
// previous digest) and the chain head is Ed25519-signed on demand, so
// post-incident tampering with machine event history is detectable even
// by an auditor holding only the machine's public key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bytes.h"
#include "core/time.h"
#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace agrarsec::secure {

struct AuditEntry {
  std::uint64_t index = 0;
  core::SimTime time = 0;
  std::string category;   ///< e.g. "estop", "ids-alert", "boot", "update"
  std::string detail;
  crypto::Sha256::Digest previous{};  ///< chain link
  crypto::Sha256::Digest digest{};    ///< hash over this entry incl. previous

  [[nodiscard]] core::Bytes encode_for_hash() const;
};

/// A signed statement of the chain head, for export to the operator.
struct AuditCheckpoint {
  std::uint64_t entry_count = 0;
  crypto::Sha256::Digest head{};
  crypto::Ed25519Signature signature{};

  [[nodiscard]] core::Bytes encode_signed() const;
};

class AuditLog {
 public:
  explicit AuditLog(crypto::Ed25519KeyPair signer);

  /// Appends an event; returns its index.
  std::uint64_t append(core::SimTime time, std::string category, std::string detail);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const crypto::Ed25519PublicKey& public_key() const {
    return signer_.public_key;
  }
  [[nodiscard]] const std::vector<AuditEntry>& entries() const { return entries_; }
  [[nodiscard]] const crypto::Sha256::Digest& head() const { return head_; }

  /// Produces a signed checkpoint of the current head.
  [[nodiscard]] AuditCheckpoint checkpoint() const;

  /// Verifies a full chain against a checkpoint with only the public key:
  /// recomputes every link and checks the signed head. Returns the index
  /// of the first broken entry, or nullopt when the chain verifies.
  static std::optional<std::uint64_t> verify(const std::vector<AuditEntry>& entries,
                                             const AuditCheckpoint& checkpoint,
                                             const crypto::Ed25519PublicKey& key);

  /// Entries filtered by category (incident reconstruction helper).
  [[nodiscard]] std::vector<const AuditEntry*> by_category(
      const std::string& category) const;

 private:
  crypto::Ed25519KeyPair signer_;
  std::vector<AuditEntry> entries_;
  crypto::Sha256::Digest head_{};  // all-zero genesis
};

}  // namespace agrarsec::secure
