#include "secure/update.h"

namespace agrarsec::secure {

core::Bytes UpdateManifest::encode_signed() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-update-v1"));
  core::append_framed(out, core::from_string(stage));
  core::append_be32(out, version);
  core::append_le64(out, total_size);
  core::append_be32(out, chunk_size);
  core::append(out, payload_hash);
  return out;
}

PreparedUpdate prepare_update(const std::string& stage, std::uint32_t version,
                              const core::Bytes& payload, std::uint32_t chunk_size,
                              const crypto::Ed25519KeyPair& signer) {
  PreparedUpdate out;
  out.manifest.stage = stage;
  out.manifest.version = version;
  out.manifest.total_size = payload.size();
  out.manifest.chunk_size = chunk_size;
  out.manifest.payload_hash = crypto::Sha256::hash(payload);

  BootImage image;
  image.name = stage;
  image.version = version;
  image.payload = payload;
  sign_image(image, signer);
  out.manifest.image_signature = image.signature;

  out.manifest.signature =
      crypto::ed25519_sign(signer, out.manifest.encode_signed());

  for (std::size_t off = 0; off < payload.size(); off += chunk_size) {
    const std::size_t len = std::min<std::size_t>(chunk_size, payload.size() - off);
    out.chunks.emplace_back(payload.begin() + static_cast<std::ptrdiff_t>(off),
                            payload.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  return out;
}

UpdateReceiver::UpdateReceiver(crypto::Ed25519PublicKey signer_key)
    : signer_key_(signer_key) {}

core::Status UpdateReceiver::begin(const UpdateManifest& manifest) {
  if (!crypto::ed25519_verify(signer_key_, manifest.encode_signed(),
                              manifest.signature)) {
    return core::make_error("bad_signature", "update manifest signature invalid");
  }
  if (manifest.chunk_size == 0) {
    return core::make_error("bad_manifest", "chunk size must be positive");
  }
  manifest_ = manifest;
  buffer_.clear();
  buffer_.reserve(manifest.total_size);
  in_progress_ = true;
  return core::Status::ok_status();
}

core::Status UpdateReceiver::feed(std::span<const std::uint8_t> chunk) {
  if (!in_progress_) {
    return core::make_error("no_update", "feed() without an accepted manifest");
  }
  if (buffer_.size() + chunk.size() > manifest_.total_size) {
    in_progress_ = false;
    return core::make_error("overflow", "more data than the manifest declared");
  }
  core::append(buffer_, chunk);
  return core::Status::ok_status();
}

core::Result<BootImage> UpdateReceiver::finalize() {
  if (!in_progress_) {
    return core::make_error("no_update", "finalize() without an accepted manifest");
  }
  in_progress_ = false;
  if (buffer_.size() != manifest_.total_size) {
    return core::make_error("incomplete", "payload shorter than the manifest declared");
  }
  const auto digest = crypto::Sha256::hash(buffer_);
  if (!core::constant_time_equal(digest, manifest_.payload_hash)) {
    return core::make_error("bad_hash", "payload hash mismatch");
  }

  BootImage image;
  image.name = manifest_.stage;
  image.version = manifest_.version;
  image.payload = std::move(buffer_);
  image.signature = manifest_.image_signature;
  buffer_.clear();
  if (!crypto::ed25519_verify(signer_key_, image.encode_signed(), image.signature)) {
    return core::make_error("bad_signature", "installed image signature invalid");
  }
  return image;
}

}  // namespace agrarsec::secure
