#include "secure/audit_log.h"

namespace agrarsec::secure {

core::Bytes AuditEntry::encode_for_hash() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-audit-v1"));
  core::append_le64(out, index);
  core::append_le64(out, static_cast<std::uint64_t>(time));
  core::append_framed(out, core::from_string(category));
  core::append_framed(out, core::from_string(detail));
  core::append(out, previous);
  return out;
}

core::Bytes AuditCheckpoint::encode_signed() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-audit-head-v1"));
  core::append_le64(out, entry_count);
  core::append(out, head);
  return out;
}

AuditLog::AuditLog(crypto::Ed25519KeyPair signer) : signer_(signer) {}

std::uint64_t AuditLog::append(core::SimTime time, std::string category,
                               std::string detail) {
  AuditEntry entry;
  entry.index = entries_.size();
  entry.time = time;
  entry.category = std::move(category);
  entry.detail = std::move(detail);
  entry.previous = head_;
  entry.digest = crypto::Sha256::hash(entry.encode_for_hash());
  head_ = entry.digest;
  entries_.push_back(std::move(entry));
  return entries_.back().index;
}

AuditCheckpoint AuditLog::checkpoint() const {
  AuditCheckpoint cp;
  cp.entry_count = entries_.size();
  cp.head = head_;
  cp.signature = crypto::ed25519_sign(signer_, cp.encode_signed());
  return cp;
}

std::optional<std::uint64_t> AuditLog::verify(const std::vector<AuditEntry>& entries,
                                              const AuditCheckpoint& checkpoint,
                                              const crypto::Ed25519PublicKey& key) {
  if (!crypto::ed25519_verify(key, checkpoint.encode_signed(), checkpoint.signature)) {
    return 0;  // untrusted head: nothing below it can be trusted
  }
  if (checkpoint.entry_count != entries.size()) {
    return entries.size() < checkpoint.entry_count ? entries.size() : checkpoint.entry_count;
  }

  crypto::Sha256::Digest running{};  // genesis
  for (std::uint64_t i = 0; i < entries.size(); ++i) {
    const AuditEntry& e = entries[i];
    if (e.index != i) return i;
    if (!core::constant_time_equal(e.previous, running)) return i;
    const auto recomputed = crypto::Sha256::hash(e.encode_for_hash());
    if (!core::constant_time_equal(recomputed, e.digest)) return i;
    running = recomputed;
  }
  if (!core::constant_time_equal(running, checkpoint.head)) {
    return entries.empty() ? 0 : entries.size() - 1;
  }
  return std::nullopt;
}

std::vector<const AuditEntry*> AuditLog::by_category(const std::string& category) const {
  std::vector<const AuditEntry*> out;
  for (const AuditEntry& e : entries_) {
    if (e.category == category) out.push_back(&e);
  }
  return out;
}

}  // namespace agrarsec::secure
