#include "secure/handshake.h"

#include <cstring>

#include "crypto/hkdf.h"
#include "crypto/sha256.h"

namespace agrarsec::secure {

namespace {
void append_chain(core::Bytes& out, const std::vector<pki::Certificate>& chain) {
  core::append_be32(out, static_cast<std::uint32_t>(chain.size()));
  for (const pki::Certificate& c : chain) core::append_framed(out, c.encode());
}

constexpr std::size_t kMaxChainLength = 8;

/// Parses count + framed certificates starting at `pos`; advances `pos`.
bool read_chain(std::span<const std::uint8_t> data, std::size_t& pos,
                std::vector<pki::Certificate>& out) {
  if (data.size() - pos < 4) return false;
  const std::uint32_t count = core::load_be32(data.data() + pos);
  pos += 4;
  if (count > kMaxChainLength) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (data.size() - pos < 4) return false;
    const std::uint32_t len = core::load_be32(data.data() + pos);
    pos += 4;
    if (data.size() - pos < len) return false;
    auto cert = pki::Certificate::decode(data.subspan(pos, len));
    if (!cert) return false;
    out.push_back(std::move(*cert));
    pos += len;
  }
  return true;
}
}  // namespace

core::Bytes HandshakeMsg1::encode() const {
  core::Bytes out;
  core::append(out, core::from_string("hs1"));
  core::append(out, ephemeral);
  return out;
}

std::optional<HandshakeMsg1> HandshakeMsg1::decode(std::span<const std::uint8_t> data) {
  if (data.size() != 3 + 32) return std::nullopt;
  if (std::memcmp(data.data(), "hs1", 3) != 0) return std::nullopt;
  HandshakeMsg1 m;
  std::memcpy(m.ephemeral.data(), data.data() + 3, 32);
  return m;
}

core::Bytes HandshakeMsg2::encode() const {
  core::Bytes out;
  core::append(out, core::from_string("hs2"));
  core::append(out, ephemeral);
  append_chain(out, chain);
  core::append(out, signature);
  return out;
}

core::Bytes HandshakeMsg3::encode() const {
  core::Bytes out;
  core::append(out, core::from_string("hs3"));
  append_chain(out, chain);
  core::append(out, signature);
  return out;
}

std::optional<HandshakeMsg2> HandshakeMsg2::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 3 + 32 || std::memcmp(data.data(), "hs2", 3) != 0) {
    return std::nullopt;
  }
  HandshakeMsg2 m;
  std::memcpy(m.ephemeral.data(), data.data() + 3, 32);
  std::size_t pos = 3 + 32;
  if (!read_chain(data, pos, m.chain)) return std::nullopt;
  if (data.size() - pos != m.signature.size()) return std::nullopt;
  std::memcpy(m.signature.data(), data.data() + pos, m.signature.size());
  return m;
}

std::optional<HandshakeMsg3> HandshakeMsg3::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 3 || std::memcmp(data.data(), "hs3", 3) != 0) {
    return std::nullopt;
  }
  HandshakeMsg3 m;
  std::size_t pos = 3;
  if (!read_chain(data, pos, m.chain)) return std::nullopt;
  if (data.size() - pos != m.signature.size()) return std::nullopt;
  std::memcpy(m.signature.data(), data.data() + pos, m.signature.size());
  return m;
}

Handshake::Handshake(const pki::Identity& identity, const pki::TrustStore& trust,
                     core::SimTime now, std::string expected_peer)
    : identity_(identity), trust_(trust), now_(now),
      expected_peer_(std::move(expected_peer)) {}

core::Bytes Handshake::transcript_hash() const {
  core::Bytes transcript;
  core::append(transcript, core::from_string("agrarsec-hs-v1"));
  if (is_initiator_) {
    core::append(transcript, eph_public_);
    core::append(transcript, peer_ephemeral_);
  } else {
    core::append(transcript, peer_ephemeral_);
    core::append(transcript, eph_public_);
  }
  const auto digest = crypto::Sha256::hash(transcript);
  return core::Bytes(digest.begin(), digest.end());
}

HandshakeMsg1 Handshake::start(crypto::Drbg& drbg) {
  is_initiator_ = true;
  eph_private_ = drbg.generate32();
  eph_public_ = crypto::x25519_base(eph_private_);
  HandshakeMsg1 m;
  m.ephemeral = eph_public_;
  return m;
}

core::Status Handshake::validate_peer(const std::vector<pki::Certificate>& chain,
                                      std::span<const std::uint8_t> signature,
                                      std::string_view role_label) {
  auto leaf = trust_.validate(chain, now_);
  if (!leaf.ok()) return leaf.error();

  if (!expected_peer_.empty() && leaf.value().body.subject != expected_peer_) {
    return core::make_error("peer_mismatch",
                            "expected '" + expected_peer_ + "', got '" +
                                leaf.value().body.subject + "'");
  }
  if (!leaf.value().body.usage.can_sign) {
    return core::make_error("key_usage", "peer certificate may not sign");
  }

  core::Bytes signed_data = transcript_hash();
  core::append(signed_data, core::from_string(std::string(role_label)));
  if (!crypto::ed25519_verify(leaf.value().body.signing_key, signed_data, signature)) {
    return core::make_error("bad_signature", "handshake signature invalid");
  }
  peer_subject_ = leaf.value().body.subject;
  return core::Status::ok_status();
}

void Handshake::derive_session(bool is_initiator) {
  const core::Bytes salt = transcript_hash();
  const auto i2r = crypto::hkdf(salt, shared_, core::from_string("i2r"), 32);
  const auto r2i = crypto::hkdf(salt, shared_, core::from_string("r2i"), 32);

  SessionKeys keys;
  if (is_initiator) {
    std::memcpy(keys.send_key.data(), i2r.data(), 32);
    std::memcpy(keys.recv_key.data(), r2i.data(), 32);
  } else {
    std::memcpy(keys.send_key.data(), r2i.data(), 32);
    std::memcpy(keys.recv_key.data(), i2r.data(), 32);
  }
  session_.emplace(keys, peer_subject_);
}

core::Result<HandshakeMsg2> Handshake::respond(const HandshakeMsg1& msg1,
                                               crypto::Drbg& drbg) {
  is_initiator_ = false;
  peer_ephemeral_ = msg1.ephemeral;
  eph_private_ = drbg.generate32();
  eph_public_ = crypto::x25519_base(eph_private_);

  if (!crypto::x25519_shared(eph_private_, peer_ephemeral_, shared_)) {
    return core::make_error("bad_ephemeral", "low-order ephemeral from initiator");
  }

  core::Bytes signed_data = transcript_hash();
  core::append(signed_data, core::from_string("resp"));

  HandshakeMsg2 m;
  m.ephemeral = eph_public_;
  m.chain = identity_.chain;
  m.signature = crypto::ed25519_sign(identity_.signing, signed_data);
  return m;
}

core::Result<HandshakeMsg3> Handshake::consume_msg2(const HandshakeMsg2& msg2) {
  peer_ephemeral_ = msg2.ephemeral;
  if (!crypto::x25519_shared(eph_private_, peer_ephemeral_, shared_)) {
    return core::make_error("bad_ephemeral", "low-order ephemeral from responder");
  }
  if (auto status = validate_peer(msg2.chain, msg2.signature, "resp"); !status.ok()) {
    return status.error();
  }

  core::Bytes signed_data = transcript_hash();
  core::append(signed_data, core::from_string("init"));

  HandshakeMsg3 m;
  m.chain = identity_.chain;
  m.signature = crypto::ed25519_sign(identity_.signing, signed_data);
  derive_session(/*is_initiator=*/true);
  return m;
}

core::Status Handshake::finish(const HandshakeMsg3& msg3) {
  if (auto status = validate_peer(msg3.chain, msg3.signature, "init"); !status.ok()) {
    return status;
  }
  derive_session(/*is_initiator=*/false);
  return core::Status::ok_status();
}

Session Handshake::take_session() {
  if (!session_) throw std::logic_error("Handshake::take_session before completion");
  Session s = std::move(*session_);
  session_.reset();
  return s;
}

core::Result<SessionPair> establish(const pki::Identity& initiator,
                                    const pki::Identity& responder,
                                    const pki::TrustStore& trust, core::SimTime now,
                                    crypto::Drbg& drbg) {
  Handshake init_side{initiator, trust, now, responder.subject()};
  Handshake resp_side{responder, trust, now, initiator.subject()};

  const HandshakeMsg1 m1 = init_side.start(drbg);
  auto m2 = resp_side.respond(m1, drbg);
  if (!m2.ok()) return m2.error();
  auto m3 = init_side.consume_msg2(m2.value());
  if (!m3.ok()) return m3.error();
  if (auto status = resp_side.finish(m3.value()); !status.ok()) return status.error();

  return SessionPair{init_side.take_session(), resp_side.take_session()};
}

}  // namespace agrarsec::secure
