// Authenticated record layer over an established session: per-direction
// ChaCha20-Poly1305 keys, sequence-number nonces, strict anti-replay.
// This is what turns the plaintext net::Message baseline into an
// integrity- and confidentiality-protected link.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/bytes.h"
#include "core/result.h"

namespace agrarsec::secure {

/// Directional key material.
struct SessionKeys {
  std::array<std::uint8_t, 32> send_key{};
  std::array<std::uint8_t, 32> recv_key{};
};

/// A sealed record: sequence number + AEAD ciphertext. The sequence is
/// bound into both the nonce and the AAD.
struct Record {
  std::uint64_t sequence = 0;
  core::Bytes ciphertext;  ///< AEAD output (ct || tag)

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<Record> decode(std::span<const std::uint8_t> data);
};

class Session {
 public:
  Session(SessionKeys keys, std::string peer_subject);

  /// Seals a payload; `aad` binds link metadata (e.g. message type).
  [[nodiscard]] Record seal(std::span<const std::uint8_t> plaintext,
                            std::span<const std::uint8_t> aad = {});

  /// Opens a record. Rejects authentication failures and replays (records
  /// at or below the highest sequence already accepted).
  [[nodiscard]] core::Result<core::Bytes> open(const Record& record,
                                               std::span<const std::uint8_t> aad = {});

  [[nodiscard]] const std::string& peer_subject() const { return peer_subject_; }
  [[nodiscard]] std::uint64_t sent_count() const { return send_sequence_; }
  [[nodiscard]] std::uint64_t replay_rejections() const { return replay_rejections_; }
  [[nodiscard]] std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  static std::array<std::uint8_t, 12> nonce_for(std::uint64_t sequence);

  SessionKeys keys_;
  std::string peer_subject_;
  std::uint64_t send_sequence_ = 0;
  std::uint64_t highest_received_ = 0;
  bool any_received_ = false;
  std::uint64_t replay_rejections_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace agrarsec::secure
