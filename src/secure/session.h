// Authenticated record layer over an established session: per-direction
// ChaCha20-Poly1305 keys, sequence-number nonces, and an RFC 4303-style
// sliding-bitmap anti-replay window. This is what turns the plaintext
// net::Message baseline into an integrity- and confidentiality-protected
// link.
//
// Anti-replay design: the lossy RadioMedium delivers frames from a
// min-heap keyed on (deliver_at, seq), so two records sealed in order can
// legitimately arrive swapped whenever their propagation jitter differs.
// A strict high-water-mark check (the original implementation) drops the
// late-but-genuine record of every such swap. Instead we keep the highest
// authenticated sequence plus a kReplayWindow-entry bitmap of the
// sequences just below it: unseen in-window records are accepted out of
// order, exact duplicates are rejected as replays, and records older than
// the window are rejected as too old (an attacker holding a record back
// longer than the window gains nothing; application-level freshness
// covers the rest). The window only advances after AEAD authentication
// succeeds, so forged sequence numbers cannot poison the window state.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/bytes.h"
#include "core/result.h"

namespace agrarsec::secure {

/// Directional key material.
struct SessionKeys {
  std::array<std::uint8_t, 32> send_key{};
  std::array<std::uint8_t, 32> recv_key{};
};

/// A sealed record: sequence number + AEAD ciphertext. The sequence is
/// bound into both the nonce and the AAD.
struct Record {
  std::uint64_t sequence = 0;
  core::Bytes ciphertext;  ///< AEAD output (ct || tag)

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<Record> decode(std::span<const std::uint8_t> data);
};

class Session {
 public:
  /// Sliding anti-replay window size (highest accepted sequence plus the
  /// kReplayWindow-1 sequences below it are tracked). 64 matches the
  /// RFC 4303 minimum and comfortably covers the radio medium's
  /// reordering depth (propagation jitter is bounded by a few steps).
  static constexpr std::uint64_t kReplayWindow = 64;

  Session(SessionKeys keys, std::string peer_subject);

  /// Seals a payload; `aad` binds link metadata (e.g. message type).
  [[nodiscard]] Record seal(std::span<const std::uint8_t> plaintext,
                            std::span<const std::uint8_t> aad = {});

  /// Opens a record. Rejects authentication failures ("bad_record"),
  /// duplicates of already-accepted sequences ("replay") and records
  /// older than the sliding window ("too_old"). Unseen sequences inside
  /// the window are accepted even when they arrive out of order.
  [[nodiscard]] core::Result<core::Bytes> open(const Record& record,
                                               std::span<const std::uint8_t> aad = {});

  [[nodiscard]] const std::string& peer_subject() const { return peer_subject_; }
  [[nodiscard]] std::uint64_t sent_count() const { return send_sequence_; }
  /// Records rejected as true duplicates (sequence already accepted).
  [[nodiscard]] std::uint64_t replay_rejections() const { return replay_rejections_; }
  /// Records rejected because they fell behind the sliding window.
  [[nodiscard]] std::uint64_t too_old_rejections() const { return too_old_rejections_; }
  /// Genuine records accepted below the high-water mark (reordered
  /// delivery the strict pre-window check would have dropped).
  [[nodiscard]] std::uint64_t out_of_order_accepted() const {
    return out_of_order_accepted_;
  }
  [[nodiscard]] std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  static std::array<std::uint8_t, 12> nonce_for(std::uint64_t sequence);

  SessionKeys keys_;
  std::string peer_subject_;
  std::uint64_t send_sequence_ = 0;
  /// Highest sequence that passed authentication; bit i of window_bits_
  /// set means sequence (highest_received_ - i) was accepted.
  std::uint64_t highest_received_ = 0;
  std::uint64_t window_bits_ = 0;
  bool any_received_ = false;
  std::uint64_t replay_rejections_ = 0;
  std::uint64_t too_old_rejections_ = 0;
  std::uint64_t out_of_order_accepted_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace agrarsec::secure
