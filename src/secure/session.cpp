#include "secure/session.h"

#include <string>

#include "crypto/aead.h"

namespace agrarsec::secure {

core::Bytes Record::encode() const {
  core::Bytes out;
  core::append_le64(out, sequence);
  core::append_framed(out, ciphertext);
  return out;
}

std::optional<Record> Record::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 12) return std::nullopt;
  Record r;
  r.sequence = core::load_le64(data.data());
  const std::uint32_t len = core::load_be32(data.data() + 8);
  if (data.size() != 12 + len) return std::nullopt;
  r.ciphertext.assign(data.begin() + 12, data.end());
  return r;
}

Session::Session(SessionKeys keys, std::string peer_subject)
    : keys_(keys), peer_subject_(std::move(peer_subject)) {}

std::array<std::uint8_t, 12> Session::nonce_for(std::uint64_t sequence) {
  std::array<std::uint8_t, 12> nonce{};
  core::store_le64(nonce.data() + 4, sequence);
  return nonce;
}

Record Session::seal(std::span<const std::uint8_t> plaintext,
                     std::span<const std::uint8_t> aad) {
  const std::uint64_t seq = ++send_sequence_;
  const auto nonce = nonce_for(seq);

  core::Bytes full_aad;
  core::append_le64(full_aad, seq);
  core::append(full_aad, aad);

  Record r;
  r.sequence = seq;
  r.ciphertext = crypto::aead_seal(keys_.send_key, nonce, full_aad, plaintext);
  return r;
}

core::Result<core::Bytes> Session::open(const Record& record,
                                        std::span<const std::uint8_t> aad) {
  // Classify against the sliding window first: duplicate and too-old
  // rejections are cheap and never touch the AEAD. Window *updates* are
  // deferred until authentication succeeds, so a forged sequence number
  // can neither mark a slot seen nor advance the high-water mark.
  const std::uint64_t seq = record.sequence;
  bool below_highest = false;
  if (any_received_ && seq <= highest_received_) {
    const std::uint64_t age = highest_received_ - seq;
    if (age >= kReplayWindow) {
      ++too_old_rejections_;
      return core::make_error("too_old",
                              "record sequence " + std::to_string(seq) +
                                  " fell behind the replay window");
    }
    if ((window_bits_ >> age) & 1U) {
      ++replay_rejections_;
      return core::make_error("replay", "record sequence " +
                                            std::to_string(seq) +
                                            " already accepted");
    }
    below_highest = true;
  }

  const auto nonce = nonce_for(seq);
  core::Bytes full_aad;
  core::append_le64(full_aad, seq);
  core::append(full_aad, aad);

  auto opened = crypto::aead_open(keys_.recv_key, nonce, full_aad, record.ciphertext);
  if (!opened.ok()) {
    ++auth_failures_;
    return core::make_error("bad_record", "record failed authentication");
  }

  if (below_highest) {
    window_bits_ |= 1ULL << (highest_received_ - seq);
    ++out_of_order_accepted_;
  } else {
    const std::uint64_t advance = any_received_ ? seq - highest_received_ : 0;
    window_bits_ = advance >= kReplayWindow ? 0 : window_bits_ << advance;
    window_bits_ |= 1U;  // bit 0 = the new highest itself
    highest_received_ = seq;
    any_received_ = true;
  }
  return opened;
}

}  // namespace agrarsec::secure
