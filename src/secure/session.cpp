#include "secure/session.h"

#include <string>

#include "crypto/aead.h"

namespace agrarsec::secure {

core::Bytes Record::encode() const {
  core::Bytes out;
  core::append_le64(out, sequence);
  core::append_framed(out, ciphertext);
  return out;
}

std::optional<Record> Record::decode(std::span<const std::uint8_t> data) {
  if (data.size() < 12) return std::nullopt;
  Record r;
  r.sequence = core::load_le64(data.data());
  const std::uint32_t len = core::load_be32(data.data() + 8);
  if (data.size() != 12 + len) return std::nullopt;
  r.ciphertext.assign(data.begin() + 12, data.end());
  return r;
}

Session::Session(SessionKeys keys, std::string peer_subject)
    : keys_(keys), peer_subject_(std::move(peer_subject)) {}

std::array<std::uint8_t, 12> Session::nonce_for(std::uint64_t sequence) {
  std::array<std::uint8_t, 12> nonce{};
  core::store_le64(nonce.data() + 4, sequence);
  return nonce;
}

Record Session::seal(std::span<const std::uint8_t> plaintext,
                     std::span<const std::uint8_t> aad) {
  const std::uint64_t seq = ++send_sequence_;
  const auto nonce = nonce_for(seq);

  core::Bytes full_aad;
  core::append_le64(full_aad, seq);
  core::append(full_aad, aad);

  Record r;
  r.sequence = seq;
  r.ciphertext = crypto::aead_seal(keys_.send_key, nonce, full_aad, plaintext);
  return r;
}

core::Result<core::Bytes> Session::open(const Record& record,
                                        std::span<const std::uint8_t> aad) {
  if (any_received_ && record.sequence <= highest_received_) {
    ++replay_rejections_;
    return core::make_error("replay", "record sequence " +
                                          std::to_string(record.sequence) +
                                          " not above high-water mark");
  }
  const auto nonce = nonce_for(record.sequence);
  core::Bytes full_aad;
  core::append_le64(full_aad, record.sequence);
  core::append(full_aad, aad);

  auto opened = crypto::aead_open(keys_.recv_key, nonce, full_aad, record.ciphertext);
  if (!opened.ok()) {
    ++auth_failures_;
    return core::make_error("bad_record", "record failed authentication");
  }
  highest_received_ = record.sequence;
  any_received_ = true;
  return opened;
}

}  // namespace agrarsec::secure
