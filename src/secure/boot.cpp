#include "secure/boot.h"

namespace agrarsec::secure {

core::Bytes BootImage::encode_signed() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-boot-v1"));
  core::append_framed(out, core::from_string(name));
  core::append_be32(out, version);
  const auto digest = crypto::Sha256::hash(payload);
  core::append(out, digest);
  return out;
}

crypto::Sha256::Digest BootImage::measurement() const {
  return crypto::Sha256::hash(encode_signed());
}

void sign_image(BootImage& image, const crypto::Ed25519KeyPair& signer) {
  image.signature = crypto::ed25519_sign(signer, image.encode_signed());
}

void MeasurementRegister::extend(const crypto::Sha256::Digest& measurement) {
  core::Bytes combined;
  core::append(combined, value_);
  core::append(combined, measurement);
  value_ = crypto::Sha256::hash(combined);
}

std::string MeasurementRegister::hex() const { return core::to_hex(value_); }

SecureBootRom::SecureBootRom(crypto::Ed25519PublicKey signer_key)
    : signer_key_(signer_key) {}

std::uint32_t SecureBootRom::rollback_floor(const std::string& stage) const {
  const auto it = rollback_floors_.find(stage);
  return it == rollback_floors_.end() ? 0 : it->second;
}

BootReport SecureBootRom::boot(const std::vector<BootImage>& chain) {
  ++attempts_;
  BootReport report;
  MeasurementRegister pcr;

  if (chain.empty()) {
    ++failures_;
    report.failure_code = "empty_chain";
    return report;
  }

  for (const BootImage& image : chain) {
    if (!crypto::ed25519_verify(signer_key_, image.encode_signed(), image.signature)) {
      ++failures_;
      report.failed_stage = image.name;
      report.failure_code = "bad_signature";
      return report;
    }
    if (image.version < rollback_floor(image.name)) {
      ++failures_;
      report.failed_stage = image.name;
      report.failure_code = "rollback";
      return report;
    }
    pcr.extend(image.measurement());
    report.booted_stages.push_back(image.name);
  }

  // Commit rollback floors only after the whole chain verified.
  for (const BootImage& image : chain) {
    auto& floor = rollback_floors_[image.name];
    floor = std::max(floor, image.version);
  }

  report.booted = true;
  report.platform_measurement = pcr.value();
  return report;
}

}  // namespace agrarsec::secure
