#include "integration/secured_worksite.h"

#include <algorithm>

#include "core/log.h"

namespace agrarsec::integration {

namespace {
// Application-level sender ids: drone and operator are fixed; forwarder i
// uses 1 for the primary (legacy convention) and 10+i for the rest.
constexpr std::uint64_t kDroneSender = 2;
constexpr std::uint64_t kOperatorSender = 3;

std::uint64_t forwarder_sender_id(std::size_t index) {
  return index == 0 ? 1 : 10 + index;
}

// fork_stream domain for the per-sensor perception-noise streams, keyed
// by application sender id (forwarders 1/10+i, drone 2 — disjoint).
// Distinct from the worksite's machine/human/weather domains, so sensing
// never correlates with movement and never touches the shared stream.
constexpr std::uint64_t kSenseStreamDomain = 0x53454E5345ULL;  // "SENSE"
}  // namespace

SecuredWorksiteConfig::SecuredWorksiteConfig() {
  worksite.forest.bounds = {{0, 0}, {400, 400}};
  worksite.forest.trees_per_hectare = 350;
  worksite.landing_area = {40, 40};

  forwarder_sensor.modality = sensors::Modality::kLidar;
  forwarder_sensor.range_m = 40.0;

  drone_sensor.modality = sensors::Modality::kCamera;
  drone_sensor.range_m = 90.0;  // elevated camera covers a wide footprint
  drone_sensor.fov_rad = 6.283185307179586;  // gimbal sweeps the full orbit
  drone_sensor.base_detect_prob = 0.9;
}

SecuredWorksite::SecuredWorksite(SecuredWorksiteConfig config)
    : config_(std::move(config)) {
  if (config_.forwarder_count == 0) config_.forwarder_count = 1;

  // One shared telemetry for the whole stack: the worksite, the planners,
  // the radio medium and the IDS all instrument into it. Its shape
  // (flight-recorder ring size in particular) comes from the config.
  telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
  config_.worksite.telemetry = telemetry_.get();
  obs::Registry& reg = telemetry_->registry();
  c_reports_sent_ = &reg.counter("secure.detection_reports_sent");
  c_reports_accepted_ = &reg.counter("secure.detection_reports_accepted");
  c_reports_rejected_ = &reg.counter("secure.detection_reports_rejected");
  c_spoofed_accepted_ = &reg.counter("secure.spoofed_messages_accepted");
  c_estops_from_ids_ = &reg.counter("secure.estops_from_ids");
  c_replay_rejected_ = &reg.counter("secure.records_replay_rejected");
  c_too_old_rejected_ = &reg.counter("secure.records_too_old_rejected");
  c_out_of_order_accepted_ = &reg.counter("secure.records_out_of_order_accepted");
  h_step_wall_ = &reg.histogram("wall.secured_step_us", 0.0, 100000.0, 20);

  worksite_ = std::make_unique<sim::Worksite>(config_.worksite, config_.seed);

  setup_units();
  harvester_id_ = worksite_->add_harvester("harvester-01", {250, 250});
  if (config_.drone_enabled) {
    drone_id_ = worksite_->add_drone("drone-01", {60, 60}, config_.drone_altitude_m);
    // The drone escorts the primary forwarder; its wide camera footprint
    // covers nearby fleet members as well.
    worksite_->set_drone_orbit(drone_id_, units_[0]->machine,
                               config_.drone_orbit_radius_m);
    drone_sensor_ = std::make_unique<sensors::PerceptionSensor>(
        SensorId{1000}, config_.drone_sensor);
    drone_sense_rng_ = core::Rng::fork_stream(config_.seed, kSenseStreamDomain,
                                              kDroneSender);
  }

  setup_pki();
  setup_radio();

  // Evidence collection (EU 2023/1230 Annex III 1.1.9) and emergent-
  // behaviour monitoring over the worksite event bus.
  for (auto& condition : safety::forestry_triggering_conditions()) {
    sotif_.add_condition(std::move(condition));
  }
  sotif_.add_condition({"sensor-dropout",
                        "probabilistic per-frame perception miss", true, 10.0});

  audit_ = std::make_unique<secure::AuditLog>(units_[0]->identity->signing);
  emergent_ = std::make_unique<sos::EmergentBehaviorMonitor>();
  emergent_->attach(worksite_->bus());
  worksite_->bus().subscribe("safety/estop", [this](const core::Event& e) {
    audit_->append(e.time, "estop", e.payload);
    telemetry_->recorder().record(e.time, "audit", "estop", e.origin);
  });
  worksite_->bus().subscribe("machine/degraded", [this](const core::Event& e) {
    audit_->append(e.time, "degraded", e.payload);
    telemetry_->recorder().record(e.time, "audit", "degraded", e.origin);
  });
  // Environmental hazards are safety-relevant operating-condition changes
  // (Annex III evidence trail): record windthrow events alongside e-stops.
  worksite_->bus().subscribe("worksite/windthrow", [this](const core::Event& e) {
    audit_->append(e.time, "windthrow", e.payload);
    telemetry_->recorder().record(e.time, "audit", "windthrow", e.origin);
  });
}

SecuredWorksite::~SecuredWorksite() = default;

void SecuredWorksite::setup_units() {
  for (std::size_t i = 0; i < config_.forwarder_count; ++i) {
    auto unit = std::make_unique<ForwarderUnit>();
    unit->index = i;
    unit->sender_id = forwarder_sender_id(i);
    unit->node = NodeId{unit->sender_id};
    const core::Vec2 start{60.0 + 25.0 * static_cast<double>(i % 4),
                           60.0 + 20.0 * static_cast<double>(i / 4)};
    unit->machine = worksite_->add_forwarder(
        "forwarder-" + std::to_string(i + 1), start);
    unit->sensor = std::make_unique<sensors::PerceptionSensor>(
        SensorId{100 + i}, config_.forwarder_sensor);
    unit->sense_rng = core::Rng::fork_stream(config_.seed, kSenseStreamDomain,
                                             unit->sender_id);
    unit->fusion = std::make_unique<safety::DetectionFusion>(config_.fusion);
    unit->monitor = std::make_unique<safety::SafetyMonitor>(
        *worksite_->machine(unit->machine), config_.monitor, &worksite_->bus());
    units_.push_back(std::move(unit));
  }
}

void SecuredWorksite::setup_pki() {
  drbg_ = std::make_unique<crypto::Drbg>(config_.seed, "secured-worksite");
  ca_ = std::make_unique<pki::CertificateAuthority>(
      pki::CertificateAuthority::create_root("site-ca", drbg_->generate32(), 0,
                                             1000 * core::kHour));
  if (auto status = trust_.add_root(ca_->certificate()); !status.ok()) {
    throw std::logic_error("trust store rejected own root: " + status.error().to_string());
  }

  for (auto& unit : units_) {
    auto id = pki::enroll(*ca_, *drbg_,
                          "forwarder-" + std::to_string(unit->index + 1),
                          pki::CertRole::kMachine, 0, 1000 * core::kHour);
    if (!id.ok()) throw std::logic_error("forwarder enrollment failed");
    unit->identity = std::move(id).take();
  }

  if (config_.drone_enabled) {
    auto drn = pki::enroll(*ca_, *drbg_, "drone-01", pki::CertRole::kDrone, 0,
                           1000 * core::kHour);
    if (!drn.ok()) throw std::logic_error("drone enrollment failed");
    drone_identity_ = std::move(drn).take();

    if (config_.secure_links) {
      for (auto& unit : units_) {
        auto pair = secure::establish(*drone_identity_, *unit->identity, trust_, 0,
                                      *drbg_);
        telemetry_->recorder().record(
            0, "secure", pair.ok() ? "handshake-ok" : "handshake-fail",
            unit->sender_id, kDroneSender);
        if (!pair.ok()) {
          throw std::logic_error("session establishment failed: " +
                                 pair.error().to_string());
        }
        unit->drone_tx = std::move(pair.value().initiator);
        unit->rx_session = std::move(pair.value().responder);
      }
    }
  }
}

void SecuredWorksite::setup_radio() {
  net::RadioConfig radio_config;
  radio_config.max_range_m = 800.0;  // site-scale link budget
  radio_ = std::make_unique<net::RadioMedium>(worksite_->rng().fork(0x52AD1),
                                              radio_config, telemetry_.get());

  for (auto& unit : units_) {
    ForwarderUnit* raw = unit.get();
    radio_->attach(
        unit->node,
        [this, raw] { return worksite_->machine(raw->machine)->position(); },
        [this, raw](const net::Frame& frame, core::SimTime now) {
          on_forwarder_frame(*raw, frame, now);
        });
  }
  if (config_.drone_enabled) {
    radio_->attach(
        drone_node_, [this] { return worksite_->machine(drone_id_)->position(); },
        [](const net::Frame&, core::SimTime) {});
  }
  radio_->attach(operator_node_, [this] { return config_.worksite.landing_area; },
                 [](const net::Frame&, core::SimTime) {});

  ids::IdsConfig ids_config;
  // The drone legitimately emits one report per detection per frame; size
  // the per-source flood threshold for a full crew in view.
  ids_config.flood_threshold = 150;
  ids_ = std::make_unique<ids::IntrusionDetectionSystem>(ids_config,
                                                         telemetry_.get());
  for (auto& unit : units_) ids_->register_node(unit->sender_id, false);
  ids_->register_node(kDroneSender, false);
  ids_->register_node(kOperatorSender, true);
  if (config_.ids_enabled) {
    radio_->add_sniffer([this](const net::Frame& frame) {
      ids_->observe(frame, worksite_->clock().now());
    });
    ids_->set_alert_handler([this](const ids::Alert& alert) {
      correlator_.ingest(alert);
      if (alert.severity == ids::AlertSeverity::kCritical) {
        c_estops_from_ids_->add();
        for (auto& unit : units_) unit->monitor->ids_critical(alert.time);
        if (audit_) {
          audit_->append(alert.time, "ids-alert",
                         "rule=" + alert.rule + " subject=" +
                             std::to_string(alert.subject));
          telemetry_->recorder().record(alert.time, "audit", "ids-alert",
                                        alert.subject);
        }
      }
    });
  }
}

net::AttackerNode& SecuredWorksite::add_attacker(core::Vec2 position, int level) {
  const NodeId id{100 + attackers_.size()};
  attackers_.push_back(std::make_unique<net::AttackerNode>(
      id, position, worksite_->rng().fork(0xA77 + attackers_.size()),
      net::attacker_profile_for_level(level)));
  attackers_.back()->attach(*radio_);
  return *attackers_.back();
}

void SecuredWorksite::attack_forwarder_sensor(const sensors::SensorAttack& attack,
                                              std::size_t index) {
  units_.at(index)->sensor->set_attack(attack);
}

std::uint32_t SecuredWorksite::channel_at(core::SimTime time) const {
  if (!config_.frequency_hopping) return config_.radio_channel;
  // Time-synchronized pseudo-random hop sequence (splitmix of the slot).
  std::uint64_t slot = static_cast<std::uint64_t>(time / config_.hop_period);
  slot += 0x9E3779B97F4A7C15ULL;
  slot = (slot ^ (slot >> 30)) * 0xBF58476D1CE4E5B9ULL;
  slot = (slot ^ (slot >> 27)) * 0x94D049BB133111EBULL;
  return config_.radio_channel +
         static_cast<std::uint32_t>((slot ^ (slot >> 31)) % config_.hop_channels);
}

void SecuredWorksite::send_from_drone(ForwarderUnit& unit, const net::Message& message) {
  net::Frame frame;
  frame.src = drone_node_;
  frame.dst = unit.node;
  frame.channel = channel_at(worksite_->clock().now());

  if (config_.secure_links && unit.drone_tx) {
    const secure::Record record = unit.drone_tx->seal(message.encode());
    net::Message outer;
    outer.type = net::MessageType::kSecureRecord;
    outer.sender = kDroneSender;
    outer.sequence = message.sequence;
    outer.timestamp = message.timestamp;
    outer.body = record.encode();
    frame.payload = outer.encode();
  } else {
    frame.payload = message.encode();
  }
  radio_->send(std::move(frame), worksite_->clock().now());
}

void SecuredWorksite::drone_report_cycle(core::SimTime now) {
  if (!config_.drone_enabled || !drone_sensor_) return;
  const sim::Machine* drone = worksite_->machine(drone_id_);
  const auto detections =
      drone_sensor_->sense(*worksite_, *drone, now, *drone_sense_rng_);

  // One report per detection per fleet member, plus a heartbeat carrying
  // "cover alive" (sessions are per machine, so sealed copies differ).
  for (auto& unit : units_) {
    for (const auto& d : detections) {
      net::Message m;
      m.type = net::MessageType::kDetectionReport;
      m.sender = kDroneSender;
      m.sequence = ++drone_sequence_;
      m.timestamp = now;
      m.body = net::DetectionBody{d.position.x, d.position.y, d.confidence, 0}.encode();
      send_from_drone(*unit, m);
      c_reports_sent_->add();
    }
    net::Message heartbeat;
    heartbeat.type = net::MessageType::kHeartbeat;
    heartbeat.sender = kDroneSender;
    heartbeat.sequence = ++drone_sequence_;
    heartbeat.timestamp = now;
    send_from_drone(*unit, heartbeat);
  }
}

void SecuredWorksite::on_forwarder_frame(ForwarderUnit& unit, const net::Frame& frame,
                                         core::SimTime now) {
  const auto outer = net::Message::decode(frame.payload);
  if (!outer) return;

  net::Message message = *outer;
  bool authenticated = false;

  if (outer->type == net::MessageType::kSecureRecord) {
    if (!unit.rx_session) return;
    const auto record = secure::Record::decode(outer->body);
    if (!record) {
      c_reports_rejected_->add();
      return;
    }
    const std::uint64_t ooo_before = unit.rx_session->out_of_order_accepted();
    auto opened = unit.rx_session->open(*record);
    if (!opened.ok()) {
      c_reports_rejected_->add();
      // Split the rejection by anti-replay classification so the drop
      // reasons are distinguishable in the telemetry export.
      if (opened.error().code == "replay") {
        c_replay_rejected_->add();
      } else if (opened.error().code == "too_old") {
        c_too_old_rejected_->add();
      }
      return;
    }
    if (unit.rx_session->out_of_order_accepted() > ooo_before) {
      c_out_of_order_accepted_->add();
    }
    const auto inner = net::Message::decode(opened.value());
    if (!inner) return;
    message = *inner;
    authenticated = true;
  } else if (config_.secure_links) {
    // Secure mode: plaintext application messages are not accepted.
    if (outer->type == net::MessageType::kDetectionReport ||
        outer->type == net::MessageType::kEstopCommand) {
      c_reports_rejected_->add();
    }
    return;
  }

  // Freshness gate on safety-relevant messages: the timestamp checked here
  // is the authenticated inner one in secure mode, so a held-back record
  // released later is discarded even though its MAC verifies.
  if (message.type == net::MessageType::kDetectionReport ||
      message.type == net::MessageType::kHeartbeat ||
      message.type == net::MessageType::kEstopCommand) {
    if (message.timestamp + config_.max_message_age < now) {
      c_reports_rejected_->add();
      return;
    }
  }

  // Spoof accounting (harness-side ground truth: frame.src is physical).
  const bool claims_known_sender =
      message.sender == kDroneSender || message.sender == kOperatorSender ||
      std::any_of(units_.begin(), units_.end(), [&](const auto& u) {
        return u->sender_id == message.sender;
      });
  const bool physically_spoofed =
      claims_known_sender && frame.src.value() != message.sender;
  if (!authenticated && physically_spoofed) {
    c_spoofed_accepted_->add();
  }

  switch (message.type) {
    case net::MessageType::kDetectionReport: {
      const auto body = net::DetectionBody::decode(message.body);
      if (!body) break;
      sensors::Detection d;
      d.target = HumanId::invalid();
      d.position = {body->x, body->y};
      d.confidence = body->confidence;
      d.source = SensorId{1000};
      d.time = message.timestamp;
      unit.fusion->add_remote(d);
      unit.monitor->note_cover(now);
      c_reports_accepted_->add();
      break;
    }
    case net::MessageType::kHeartbeat:
      if (message.sender == kDroneSender) unit.monitor->note_cover(now);
      break;
    case net::MessageType::kEstopCommand:
      unit.monitor->command_stop(safety::EstopReason::kRemoteCommand, now);
      break;
    default:
      break;
  }
}

void SecuredWorksite::forwarder_sense_cycle(core::SimTime now) {
  for (auto& unit : units_) {
    const sim::Machine* forwarder = worksite_->machine(unit->machine);
    unit->fusion->add_local(
        unit->sensor->sense(*worksite_, *forwarder, now, *unit->sense_rng));
  }
}

void SecuredWorksite::telemetry_cycle(core::SimTime now) {
  for (auto& unit : units_) {
    if (now - unit->last_telemetry < config_.telemetry_period) continue;
    unit->last_telemetry = now;
    const sim::Machine* forwarder = worksite_->machine(unit->machine);

    net::Message m;
    m.type = net::MessageType::kTelemetry;
    m.sender = unit->sender_id;
    m.sequence = ++unit->telemetry_sequence;
    m.timestamp = now;
    m.body = net::TelemetryBody{forwarder->position().x, forwarder->position().y,
                                forwarder->heading(), forwarder->speed()}
                 .encode();
    net::Frame frame;
    frame.src = unit->node;
    frame.dst = NodeId::invalid();  // broadcast to site
    frame.channel = channel_at(now);
    frame.payload = m.encode();
    radio_->send(std::move(frame), now);
  }
}

void SecuredWorksite::track_ground_truth(core::SimTime now) {
  for (auto& unit : units_) {
    const sim::Machine* forwarder = worksite_->machine(unit->machine);
    const auto tracks = unit->fusion->fuse(now);

    auto associated = [&](core::Vec2 person) {
      for (const auto& track : tracks) {
        if (core::distance(track.position, person) <= kTrackAssociationM) return true;
      }
      return false;
    };

    bool any_in_critical = false;
    // Indexed range query instead of a scan over every human on site: only
    // people inside the zones carry per-step bookkeeping. Anyone farther
    // out is handled by the deactivation sweep below. The loop streams
    // the worksite's SoA hot state (slots, not Human*) — between steps
    // the mirror matches the entities bit-for-bit.
    const double zone_radius =
        std::max(config_.monitor.warning_zone_m, config_.monitor.critical_zone_m);
    const sim::HumanHotState& people = worksite_->human_hot();
    worksite_->humans_within_slots(forwarder->position(), zone_radius, zone_slots_);
    for (const std::uint32_t slot : zone_slots_) {
      const core::Vec2 hpos = people.position(slot);
      const double d = core::distance(hpos, forwarder->position());
      const bool in_critical = d <= config_.monitor.critical_zone_m;
      const bool in_warning = d <= config_.monitor.warning_zone_m;
      any_in_critical |= in_critical;
      if (!in_warning) continue;  // deactivation handled by the sweep

      EncounterState& state = unit->encounters[people.id[slot]];

      // Per-step coverage: is this person represented in this machine's
      // fused picture right now?
      ++outcome_.person_zone_steps;
      const bool covered = associated(hpos);
      if (covered) ++outcome_.person_covered_steps;
      const bool fast =
          forwarder->speed() > forwarder->config().degraded_speed_mps + 0.3;
      if (!covered && fast) ++outcome_.blind_fast_steps;

      // SOTIF: attribute every blind step to its triggering condition.
      if (!covered) {
        std::string condition;
        if (config_.worksite.weather != sim::Weather::kClear) {
          condition = std::string("weather-") +
                      std::string(sim::weather_name(config_.worksite.weather));
        } else {
          switch (worksite_->terrain().occlusion_cause(
              forwarder->position(), forwarder->sensor_agl(), hpos,
              people.height[slot] * 0.7)) {
            case sim::Terrain::OcclusionCause::kBoulder:
              condition = "occlusion-boulder";
              break;
            case sim::Terrain::OcclusionCause::kBrush:
              condition = "occlusion-brush";
              break;
            case sim::Terrain::OcclusionCause::kTree:
              condition = "occlusion-stems";
              break;
            case sim::Terrain::OcclusionCause::kTerrain:
              condition = "occlusion-terrain";
              break;
            case sim::Terrain::OcclusionCause::kNone:
              condition = "sensor-dropout";  // probabilistic frame miss
              break;
          }
        }
        sotif_.record(condition, fast ? safety::ScenarioOutcome::kHazardous
                                      : safety::ScenarioOutcome::kSafe);
      }

      if (!state.active) {
        state.active = true;
        state.started = now;
        state.detected = false;
        ++outcome_.encounters;
      }
      if (!state.detected && covered) {
        state.detected = true;
        outcome_.time_to_detect_ms.add(static_cast<double>(now - state.started));
      }
    }

    // Close out encounters whose person left the warning zone this step.
    for (auto& [human_value, state] : unit->encounters) {
      if (!state.active) continue;
      const sim::Human* human = worksite_->human(HumanId{human_value});
      if (human != nullptr &&
          core::distance(human->position(), forwarder->position()) <=
              config_.monitor.warning_zone_m) {
        continue;
      }
      state.active = false;
      if (!state.detected) ++outcome_.missed_encounters;
    }

    if (any_in_critical) {
      ++outcome_.exposure_steps;
      // Hazardous only above the occlusion-safe speed: stopping distance at
      // degraded speed fits the machine's own (occludable) sensing.
      if (forwarder->speed() > forwarder->config().degraded_speed_mps + 0.3) {
        ++outcome_.hazardous_exposures;
      }
    }
  }
}

void SecuredWorksite::step() {
  // Full-stack step wall time (sim + radio + IDS + safety); the "wall."
  // prefix keeps this timing histogram out of the deterministic export.
  const std::uint64_t step_start_ns = obs::Tracer::now_ns();
  worksite_->step();
  const core::SimTime now = worksite_->clock().now();

  forwarder_sense_cycle(now);
  drone_report_cycle(now);
  telemetry_cycle(now);

  radio_->step(now);
  if (config_.ids_enabled) {
    ids_->tick(now);
    correlator_.tick(now);
  }

  for (auto& unit : units_) {
    unit->monitor->update(unit->fusion->fuse(now), now);
  }
  track_ground_truth(now);

  h_step_wall_->add(
      static_cast<double>(obs::Tracer::now_ns() - step_start_ns) / 1000.0);
}

void SecuredWorksite::run_for(core::SimDuration duration) {
  const core::SimTime end = worksite_->clock().now() + duration;
  while (worksite_->clock().now() < end) step();
}

SecurityMetrics SecuredWorksite::security_metrics() const {
  SecurityMetrics m;
  m.detection_reports_sent = c_reports_sent_->value();
  m.detection_reports_accepted = c_reports_accepted_->value();
  m.detection_reports_rejected = c_reports_rejected_->value();
  m.spoofed_messages_accepted = c_spoofed_accepted_->value();
  m.estops_from_ids = c_estops_from_ids_->value();
  return m;
}

}  // namespace agrarsec::integration
