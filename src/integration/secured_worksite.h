// End-to-end composition of the paper's use case (Figures 1 & 2): the
// worksite simulation wired to the radio medium, PKI-backed secure
// channels, the on-machine IDS and the collaborative safety stack. This
// is the top of the library — examples and benches configure it and read
// its outcome metrics.
//
// Dataflow per simulation step (100 ms):
//   drone + forwarder sensors sense -> drone serializes detections and
//   radios them to each forwarder (plaintext broadcast or per-session
//   sealed records, per config) -> forwarders parse/authenticate, feed
//   their fusion -> each safety monitor decides (e-stop / degrade /
//   normal) -> telemetry heartbeats -> IDS taps every frame -> radio
//   applies channel effects/attacks.
//
// Supports a fleet: `forwarder_count` autonomous forwarders, each with
// its own perception, fusion, safety monitor, identity and (in secure
// mode) its own session with the drone. Single-forwarder accessors
// (forwarder_id(), monitor(), ...) refer to the primary (first) machine.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"
#include "crypto/random.h"
#include "ids/correlation.h"
#include "ids/ids.h"
#include "net/attacker.h"
#include "net/radio.h"
#include "obs/telemetry.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "safety/fusion.h"
#include "safety/monitor.h"
#include "safety/sotif.h"
#include "secure/audit_log.h"
#include "secure/handshake.h"
#include "sensors/perception.h"
#include "sim/worksite.h"
#include "sos/emergent.h"

namespace agrarsec::integration {

struct SecuredWorksiteConfig {
  sim::WorksiteConfig worksite;
  std::uint64_t seed = 1;

  /// Number of autonomous forwarders (Figure 1 shows a fleet).
  std::size_t forwarder_count = 1;

  bool drone_enabled = true;
  double drone_altitude_m = 45.0;
  double drone_orbit_radius_m = 25.0;

  /// Link protection: false = plaintext messages (the attackable
  /// baseline), true = AEAD records over established sessions.
  bool secure_links = true;
  bool ids_enabled = true;

  safety::FusionConfig fusion;
  safety::MonitorConfig monitor;
  sensors::PerceptionConfig forwarder_sensor;
  sensors::PerceptionConfig drone_sensor;

  core::SimDuration telemetry_period = core::kSecond;
  std::uint32_t radio_channel = 3;
  /// Channel agility: when enabled, all site traffic hops pseudo-randomly
  /// over `hop_channels` channels per `hop_period` (time-synchronized
  /// across machines), so a narrowband jammer only ever covers 1/N of the
  /// traffic — the "frequency-hopping" countermeasure of the catalogue.
  bool frequency_hopping = false;
  std::uint32_t hop_channels = 8;
  core::SimDuration hop_period = 200;
  /// Application-layer freshness: safety-relevant messages older than this
  /// are discarded even when cryptographically valid (defeats hold-back /
  /// delayed-release replay, which sequence monotonicity alone cannot).
  core::SimDuration max_message_age = 2 * core::kSecond;

  /// Shape of the shared obs::Telemetry the full stack instruments into —
  /// notably flight_capacity, the flight-recorder ring size (long
  /// campaigns need more than the 4096 default to keep early events).
  obs::TelemetryConfig telemetry;

  SecuredWorksiteConfig();
};

/// Outcome counters the experiments read (aggregated over the fleet).
/// Registry-backed: the live values are "secure.*" counters in the site's
/// obs::Telemetry; security_metrics() assembles this snapshot from them.
struct SecurityMetrics {
  std::uint64_t detection_reports_sent = 0;
  std::uint64_t detection_reports_accepted = 0;
  std::uint64_t detection_reports_rejected = 0;  ///< failed auth/replay/freshness
  std::uint64_t spoofed_messages_accepted = 0;   ///< baseline weakness metric
  std::uint64_t estops_from_ids = 0;
};

struct SafetyOutcome {
  /// Steps with a person inside a machine's critical zone while that
  /// machine moves faster than its occlusion-safe degraded speed —
  /// degraded crawling (stopping distance within own-sensor range) is by
  /// design NOT counted.
  std::uint64_t hazardous_exposures = 0;
  std::uint64_t exposure_steps = 0;       ///< steps with a person in a zone
  core::SampleSet time_to_detect_ms;      ///< first associated track per encounter
  std::uint64_t missed_encounters = 0;    ///< encounter ended with no detection
  std::uint64_t encounters = 0;
  /// Per-step coverage while a person is inside a warning zone: a step is
  /// covered when that machine's fused picture holds a track within
  /// association range of the person's true position. Uncovered steps are
  /// exactly the occlusion blind spots Figure 2 is about. A person inside
  /// two machines' zones contributes one sample per machine.
  std::uint64_t person_zone_steps = 0;
  std::uint64_t person_covered_steps = 0;
  /// Steps where a machine exceeds its occlusion-safe speed while an
  /// *undetected* person stands in its warning zone — the precursor event
  /// §III-B warns about (unsafe behaviour caused by a cyber attack that
  /// removes or forges the collaborative cover).
  std::uint64_t blind_fast_steps = 0;

  [[nodiscard]] double coverage() const {
    return person_zone_steps == 0
               ? 1.0
               : static_cast<double>(person_covered_steps) /
                     static_cast<double>(person_zone_steps);
  }
};

class SecuredWorksite {
 public:
  explicit SecuredWorksite(SecuredWorksiteConfig config);
  ~SecuredWorksite();

  SecuredWorksite(const SecuredWorksite&) = delete;
  SecuredWorksite& operator=(const SecuredWorksite&) = delete;

  /// Advances one fixed step.
  void step();
  void run_for(core::SimDuration duration);

  // --- access for scenario scripting ---
  [[nodiscard]] sim::Worksite& worksite() { return *worksite_; }
  [[nodiscard]] const sim::Worksite& worksite() const { return *worksite_; }
  [[nodiscard]] net::RadioMedium& radio() { return *radio_; }
  [[nodiscard]] ids::IntrusionDetectionSystem& ids() { return *ids_; }
  /// Alert-to-incident correlation over the IDS stream.
  [[nodiscard]] const ids::AlertCorrelator& incidents() const { return correlator_; }

  /// Primary (first) forwarder accessors — the single-machine API.
  [[nodiscard]] safety::SafetyMonitor& monitor() { return *units_[0]->monitor; }
  [[nodiscard]] MachineId forwarder_id() const { return units_[0]->machine; }
  [[nodiscard]] NodeId forwarder_node() const { return units_[0]->node; }

  /// Fleet accessors.
  [[nodiscard]] std::size_t forwarder_count() const { return units_.size(); }
  [[nodiscard]] MachineId forwarder_id(std::size_t index) const {
    return units_.at(index)->machine;
  }
  [[nodiscard]] safety::SafetyMonitor& monitor(std::size_t index) {
    return *units_.at(index)->monitor;
  }

  [[nodiscard]] MachineId drone_id() const { return drone_id_; }
  [[nodiscard]] NodeId drone_node() const { return drone_node_; }

  /// Attaches an attacker radio (used by the attack benches).
  net::AttackerNode& add_attacker(core::Vec2 position, int level);

  /// Applies a sensor attack to a forwarder's perception (default: primary).
  void attack_forwarder_sensor(const sensors::SensorAttack& attack,
                               std::size_t index = 0);

  [[nodiscard]] SecurityMetrics security_metrics() const;
  [[nodiscard]] const SafetyOutcome& safety_outcome() const { return outcome_; }

  /// The shared telemetry for the full stack: worksite counters and step
  /// spans, planner/radio/IDS instruments, and the flight recorder all
  /// land here. Benches export it via obs::write_bench_artifact.
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }
  [[nodiscard]] const SecuredWorksiteConfig& config() const { return config_; }

  /// Tamper-evident machine event log (EU 2023/1230 Annex III 1.1.9
  /// evidence duty). Records e-stops, degradations and critical alerts.
  [[nodiscard]] const secure::AuditLog& audit() const { return *audit_; }

  /// SoS emergent-behaviour monitor over the worksite event bus.
  [[nodiscard]] const sos::EmergentBehaviorMonitor& emergent() const {
    return *emergent_;
  }

  /// SOTIF evidence: every blind (uncovered) person-step is recorded
  /// against the triggering condition that caused it (which occluder
  /// class blocked the sight line), feeding the ISO 21448 scenario-area
  /// analysis of §III-C.
  [[nodiscard]] const safety::SotifAnalysis& sotif() const { return sotif_; }

  /// Channel in use at `time` (constant unless frequency_hopping).
  [[nodiscard]] std::uint32_t channel_at(core::SimTime time) const;

  /// A forwarder's private perception-noise stream (determinism tests
  /// peek at these to prove fleet growth leaves them untouched).
  [[nodiscard]] core::Rng& unit_sense_rng(std::size_t index) {
    return *units_.at(index)->sense_rng;
  }

 private:
  // Per-human encounter tracking (ground truth for time-to-detect /
  // misses / coverage), per machine.
  struct EncounterState {
    bool active = false;
    core::SimTime started = 0;
    bool detected = false;
  };

  /// One autonomous forwarder with its full on-machine stack.
  struct ForwarderUnit {
    std::size_t index = 0;
    MachineId machine;
    NodeId node;
    std::uint64_t sender_id = 0;  ///< application-level sender id
    std::unique_ptr<sensors::PerceptionSensor> sensor;
    /// Per-unit perception-noise stream, fork_stream-keyed by sender id:
    /// adding or removing fleet members never perturbs another unit's
    /// sense draws, and nothing in the step loop touches the shared
    /// worksite stream.
    std::optional<core::Rng> sense_rng;
    std::unique_ptr<safety::DetectionFusion> fusion;
    std::unique_ptr<safety::SafetyMonitor> monitor;
    std::optional<pki::Identity> identity;
    std::optional<secure::Session> rx_session;  ///< drone -> this machine
    std::optional<secure::Session> drone_tx;    ///< drone-side endpoint
    std::uint64_t telemetry_sequence = 0;
    core::SimTime last_telemetry = -1000000;
    std::unordered_map<std::uint64_t, EncounterState> encounters;
  };

  void setup_units();
  void setup_pki();
  void setup_radio();
  void on_forwarder_frame(ForwarderUnit& unit, const net::Frame& frame,
                          core::SimTime now);
  void drone_report_cycle(core::SimTime now);
  void forwarder_sense_cycle(core::SimTime now);
  void telemetry_cycle(core::SimTime now);
  void track_ground_truth(core::SimTime now);
  void send_from_drone(ForwarderUnit& unit, const net::Message& message);

  SecuredWorksiteConfig config_;
  /// Declared before every component that instruments into it (worksite,
  /// radio, IDS hold raw pointers), so it is destroyed last.
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<sim::Worksite> worksite_;
  std::unique_ptr<net::RadioMedium> radio_;
  std::unique_ptr<ids::IntrusionDetectionSystem> ids_;
  ids::AlertCorrelator correlator_;

  // PKI
  std::unique_ptr<crypto::Drbg> drbg_;
  std::unique_ptr<pki::CertificateAuthority> ca_;
  pki::TrustStore trust_;
  std::optional<pki::Identity> drone_identity_;

  // Actors
  std::vector<std::unique_ptr<ForwarderUnit>> units_;
  MachineId harvester_id_;
  MachineId drone_id_;
  NodeId drone_node_{2};
  NodeId operator_node_{3};

  std::unique_ptr<sensors::PerceptionSensor> drone_sensor_;
  std::optional<core::Rng> drone_sense_rng_;
  std::unique_ptr<secure::AuditLog> audit_;
  std::unique_ptr<sos::EmergentBehaviorMonitor> emergent_;
  std::vector<std::unique_ptr<net::AttackerNode>> attackers_;

  // Security outcome counters, registry-backed ("secure.*"): handles
  // resolved once in the constructor; all increments happen in serial
  // contexts (radio delivery callbacks, IDS alert handler, drone cycle).
  obs::Counter* c_reports_sent_ = nullptr;
  obs::Counter* c_reports_accepted_ = nullptr;
  obs::Counter* c_reports_rejected_ = nullptr;
  obs::Counter* c_spoofed_accepted_ = nullptr;
  obs::Counter* c_estops_from_ids_ = nullptr;
  /// Anti-replay classification of secure-record drops/acceptances
  /// ("secure.records_*"): replay = true duplicate, too_old = behind the
  /// sliding window, out_of_order = genuine record accepted below the
  /// high-water mark (the min-heap radio queue reorders routinely).
  obs::Counter* c_replay_rejected_ = nullptr;
  obs::Counter* c_too_old_rejected_ = nullptr;
  obs::Counter* c_out_of_order_accepted_ = nullptr;
  /// Full-stack step wall time ("wall." prefix: full artifact only).
  obs::Histogram* h_step_wall_ = nullptr;

  SafetyOutcome outcome_;
  safety::SotifAnalysis sotif_;

  std::uint64_t drone_sequence_ = 0;

  /// Zone-query scratch for track_ground_truth (human slots into the
  /// worksite's SoA hot state; allocation-free after warmup).
  std::vector<std::uint32_t> zone_slots_;

  static constexpr double kTrackAssociationM = 4.0;
};

}  // namespace agrarsec::integration
