#include "service/console.h"

#include <algorithm>
#include <charconv>
#include <optional>
#include <utility>

#include "analysis/json.h"
#include "obs/trace.h"
#include "secure/handshake.h"

namespace agrarsec::service {

namespace {

/// Wall-clock milliseconds for the control-plane sensor. The sensor's
/// telemetry is private to the console and never part of a deterministic
/// export, so wall time is the honest clock here.
core::SimTime sensor_now_ms() {
  return static_cast<core::SimTime>(obs::Tracer::now_ns() / 1000000ull);
}

/// Appends one SSE frame: optional event name, optional id, and the
/// payload split over `data:` lines (SSE forbids raw newlines in a frame;
/// multi-line payloads arrive as consecutive data lines).
void append_sse_event(std::string& out, std::string_view event,
                      const std::uint64_t* id, std::string_view payload) {
  if (!event.empty()) {
    out += "event: ";
    out += event;
    out.push_back('\n');
  }
  if (id != nullptr) out += "id: " + std::to_string(*id) + "\n";
  while (!payload.empty() && payload.back() == '\n') payload.remove_suffix(1);
  std::size_t pos = 0;
  while (pos <= payload.size()) {
    std::size_t nl = payload.find('\n', pos);
    if (nl == std::string_view::npos) nl = payload.size();
    out += "data: ";
    out.append(payload.data() + pos, nl - pos);
    out.push_back('\n');
    if (nl == payload.size()) break;
    pos = nl + 1;
  }
  out.push_back('\n');
}

std::span<const std::uint8_t> console_aad() {
  return {reinterpret_cast<const std::uint8_t*>(kConsoleAad.data()),
          kConsoleAad.size()};
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
}

std::string rpc_error(std::uint64_t id, std::string_view code,
                      std::string_view message) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"error\":{\"code\":\"";
  append_json_escaped(out, code);
  out += "\",\"message\":\"";
  append_json_escaped(out, message);
  out += "\"}}";
  return out;
}

std::string rpc_result(std::uint64_t id, std::string_view result_json) {
  return "{\"id\":" + std::to_string(id) + ",\"result\":" +
         std::string(result_json) + "}";
}

/// Numeric param with default; nullopt when present but not a number.
std::optional<double> param_number(const analysis::Json* params,
                                   std::string_view key, double fallback) {
  if (params == nullptr || !params->is(analysis::Json::Kind::kObject)) {
    return fallback;
  }
  const analysis::Json* v = params->find(key);
  if (v == nullptr) return fallback;
  if (!v->is(analysis::Json::Kind::kNumber)) return std::nullopt;
  return v->as_number();
}

bool parse_session_id(std::string_view text, SessionId& out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
  out = value;
  return true;
}

}  // namespace

// --- ConsoleService --------------------------------------------------------

ConsoleService::ConsoleService(FleetService& fleet, pki::Identity identity,
                               pki::TrustStore trust, std::uint64_t drbg_seed,
                               ConsoleConfig config)
    : fleet_(fleet),
      identity_(std::move(identity)),
      trust_(std::move(trust)),
      drbg_(drbg_seed, "console-control"),
      config_(std::move(config)),
      http_(net::HttpServerConfig{.port = config_.http_port,
                                  .io_timeout_ms = config_.io_timeout_ms,
                                  .max_requests_per_connection = 128,
                                  .max_connections = config_.max_http_connections,
                                  .limits = {}}),
      sensor_([&] {
        // Signature-only sensor with a private telemetry stack: its
        // counters and flight events stay out of every fleet export.
        ids::IdsConfig c = config_.sensor;
        c.enable_anomaly = false;
        return c;
      }()) {}

std::uint64_t ConsoleService::sensor_alert_count(const std::string& rule) const {
  const std::lock_guard<std::mutex> lock(sensor_mu_);
  return sensor_.alert_count(rule);
}

std::uint64_t ConsoleService::sensor_total_alerts() const {
  const std::lock_guard<std::mutex> lock(sensor_mu_);
  return sensor_.total_alerts();
}

void ConsoleService::sense(ids::ControlPlaneEvent event, std::uint64_t subject) {
  const std::lock_guard<std::mutex> lock(sensor_mu_);
  sensor_.observe_control(event, sensor_now_ms(), subject);
}

ConsoleService::~ConsoleService() { stop(); }

core::Status ConsoleService::start() {
  if (running()) return core::make_error("running", "console already started");
  if (auto status = control_listener_.bind_and_listen(config_.control_port);
      !status.ok()) {
    return status;
  }
  if (auto status = http_.start([this](const net::HttpRequest& request) {
        return route(request);
      });
      !status.ok()) {
    control_listener_.close();
    return status;
  }
  stop_.store(false, std::memory_order_relaxed);
  control_thread_ = std::thread([this] { control_loop(); });
  return core::Status::ok_status();
}

void ConsoleService::stop() {
  stop_.store(true, std::memory_order_relaxed);
  http_.stop();
  if (control_thread_.joinable()) control_thread_.join();
  control_listener_.close();
}

net::HttpResponse ConsoleService::route(const net::HttpRequest& request) {
  // The HTTP plane is read-only by construction; every mutating verb
  // lives behind the secure control channel.
  if (request.method == "POST") {
    return net::HttpResponse::error(
        405, "read_only",
        "mutating verbs require the authenticated control channel");
  }
  const std::string_view path = request.path();
  if (path == "/" || path == "/help") {
    return net::HttpResponse::json(
        "{\"endpoints\":[\"/metrics\",\"/sessions\",\"/utilization\",\"/ids\","
        "\"/flight/<session>?n=<events>&cursor=<seq>\","
        "\"/stream/flight/<session>?cursor=<seq>\",\"/stream/metrics\"]}");
  }
  if (path == "/metrics") return net::HttpResponse::json(fleet_.metrics_json());
  if (path == "/sessions") return net::HttpResponse::json(fleet_.sessions_json());
  if (path == "/utilization") {
    return net::HttpResponse::json(fleet_.utilization_json());
  }
  if (path == "/ids") return net::HttpResponse::json(ids_json());
  if (path == "/stream/metrics") return route_stream_metrics();
  if (constexpr std::string_view prefix = "/stream/flight/";
      path.starts_with(prefix)) {
    return route_stream_flight(request, path.substr(prefix.size()));
  }
  if (constexpr std::string_view prefix = "/flight/"; path.starts_with(prefix)) {
    return route_flight(request, path.substr(prefix.size()));
  }
  return net::HttpResponse::error(404, "not_found", std::string(path));
}

net::HttpResponse ConsoleService::route_flight(const net::HttpRequest& request,
                                               std::string_view id_text) {
  SessionId id = 0;
  if (!parse_session_id(id_text, id)) {
    return net::HttpResponse::error(400, "bad_session", "non-numeric session id");
  }
  std::size_t n = config_.flight_tail_default;
  if (const std::string_view q = request.query_param("n"); !q.empty()) {
    SessionId parsed = 0;
    if (!parse_session_id(q, parsed) || parsed == 0) {
      return net::HttpResponse::error(400, "bad_param", "n must be a positive integer");
    }
    n = static_cast<std::size_t>(parsed);
  }
  std::string body;
  if (const std::string_view c = request.query_param("cursor"); !c.empty()) {
    // Sequenced poll: resume exactly after the last event of the previous
    // response (its "next_cursor") — repeated polls never overlap.
    std::uint64_t cursor = 0;
    if (!parse_session_id(c, cursor)) {
      return net::HttpResponse::error(400, "bad_param",
                                      "cursor must be a non-negative integer");
    }
    body = fleet_.flight_since_json(id, cursor, n);
  } else {
    body = fleet_.flight_tail_json(id, n);
  }
  if (body.empty()) {
    return net::HttpResponse::error(404, "unknown_session",
                                    "no such session: " + std::to_string(id));
  }
  return net::HttpResponse::json(std::move(body));
}

net::HttpResponse ConsoleService::route_stream_flight(
    const net::HttpRequest& request, std::string_view id_text) {
  SessionId id = 0;
  if (!parse_session_id(id_text, id)) {
    return net::HttpResponse::error(400, "bad_session", "non-numeric session id");
  }
  std::uint64_t cursor = 0;
  if (const std::string_view c = request.query_param("cursor"); !c.empty()) {
    if (!parse_session_id(c, cursor)) {
      return net::HttpResponse::error(400, "bad_param",
                                      "cursor must be a non-negative integer");
    }
  }
  if (!fleet_.flight_read(id, cursor, 0).ok) {
    return net::HttpResponse::error(404, "unknown_session",
                                    "no such session: " + std::to_string(id));
  }
  // One SSE frame per flight event; `id:` carries the sequence number and
  // the data line is byte-identical to the polled JSONL export's line.
  // Ring overwrites are surfaced as an explicit "dropped" frame, so a
  // lagging subscriber sees its loss instead of a silent gap.
  const std::size_t chunk_events = config_.stream_chunk_events;
  return net::HttpResponse::event_stream(
      [this, id, cursor, chunk_events](std::string& out) mutable {
        const FleetService::FlightChunk chunk =
            fleet_.flight_read(id, cursor, chunk_events);
        if (!chunk.ok) return false;  // session destroyed mid-stream
        if (chunk.dropped > 0) {
          append_sse_event(out, "dropped", nullptr,
                           "{\"dropped\":" + std::to_string(chunk.dropped) + "}");
        }
        std::uint64_t seq = chunk.first_seq;
        std::size_t pos = 0;
        while (pos < chunk.jsonl.size()) {
          std::size_t nl = chunk.jsonl.find('\n', pos);
          if (nl == std::string::npos) nl = chunk.jsonl.size();
          append_sse_event(out, {}, &seq,
                           std::string_view{chunk.jsonl}.substr(pos, nl - pos));
          ++seq;
          pos = nl + 1;
        }
        cursor = chunk.next_cursor;
        return true;
      });
}

net::HttpResponse ConsoleService::route_stream_metrics() {
  const auto interval_ns =
      static_cast<std::uint64_t>(config_.stream_interval_ms) * 1000000ull;
  return net::HttpResponse::event_stream(
      [this, interval_ns, last_emit = std::uint64_t{0}](std::string& out) mutable {
        const std::uint64_t now = obs::Tracer::now_ns();
        if (last_emit != 0 && now - last_emit < interval_ns) return true;
        last_emit = now;
        append_sse_event(out, "sessions", nullptr, fleet_.sessions_json());
        append_sse_event(out, "ids", nullptr, ids_json());
        return true;
      });
}

std::string ConsoleService::ids_json() const {
  std::string out = "{\"sensor\":{\"alerts_total\":";
  {
    const std::lock_guard<std::mutex> lock(sensor_mu_);
    out += std::to_string(sensor_.total_alerts());
    for (const std::string_view rule :
         {"control-bruteforce", "control-flood", "control-replay-burst"}) {
      out += ",\"";
      out += rule;
      out += "\":" + std::to_string(sensor_.alert_count(std::string(rule)));
    }
  }
  out += "},\"control\":{\"sessions_established\":" +
         std::to_string(control_sessions_established());
  out += ",\"commands_dispatched\":" + std::to_string(commands_dispatched());
  out += ",\"records_rejected\":" + std::to_string(records_rejected());
  out += ",\"rotations\":" + std::to_string(control_rotations());
  out += "},\"http\":{\"connections_accepted\":" +
         std::to_string(http_.connections_accepted());
  out += ",\"connections_rejected\":" + std::to_string(http_.connections_rejected());
  out += ",\"requests_served\":" + std::to_string(http_.requests_served());
  out += ",\"protocol_errors\":" + std::to_string(http_.protocol_errors());
  out += ",\"streams_opened\":" + std::to_string(http_.streams_opened());
  out += ",\"streams_overrun\":" + std::to_string(http_.streams_overrun());
  out += "}}";
  return out;
}

void ConsoleService::control_loop() {
  // Mirror of HttpServer::serve_loop: short accept timeout so stop() is
  // observed promptly; one authenticated connection served at a time.
  while (!stop_.load(std::memory_order_relaxed)) {
    net::TcpStream conn = control_listener_.accept_conn(50);
    if (!conn.valid()) continue;
    handle_control_connection(std::move(conn));
  }
}

void ConsoleService::handle_control_connection(net::TcpStream stream) {
  const int timeout = config_.io_timeout_ms;

  // Handshake flights, one frame each. Any malformed flight closes the
  // connection before a session exists — nothing to poison.
  const auto frame1 = net::read_frame(stream, timeout);
  if (!frame1) return;
  const auto msg1 = secure::HandshakeMsg1::decode(*frame1);
  if (!msg1) {
    records_rejected_.fetch_add(1, std::memory_order_relaxed);
    sense(ids::ControlPlaneEvent::kHandshakeFailed);
    return;
  }
  secure::Handshake handshake{identity_, trust_, config_.cert_validation_time};
  auto msg2 = handshake.respond(*msg1, drbg_);
  if (!msg2.ok()) {
    records_rejected_.fetch_add(1, std::memory_order_relaxed);
    sense(ids::ControlPlaneEvent::kHandshakeFailed);
    return;
  }
  if (!net::write_frame(stream, msg2.value().encode(), timeout)) return;
  const auto frame3 = net::read_frame(stream, timeout);
  if (!frame3) return;
  const auto msg3 = secure::HandshakeMsg3::decode(*frame3);
  if (!msg3 || !handshake.finish(*msg3).ok()) {
    records_rejected_.fetch_add(1, std::memory_order_relaxed);
    sense(ids::ControlPlaneEvent::kHandshakeFailed);
    return;
  }
  secure::Session session = handshake.take_session();

  if (!config_.allowed_subjects.empty()) {
    const auto& allowed = config_.allowed_subjects;
    if (std::find(allowed.begin(), allowed.end(), session.peer_subject()) ==
        allowed.end()) {
      sense(ids::ControlPlaneEvent::kAuthzDenied);
      return;  // authenticated but not authorized: drop the connection
    }
  }
  sessions_established_.fetch_add(1, std::memory_order_relaxed);
  sense(ids::ControlPlaneEvent::kHandshakeOk);

  int commands = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         commands < config_.max_commands_per_connection) {
    const auto frame = net::read_frame(stream, timeout);
    if (!frame) return;  // orderly close, timeout or oversized prefix
    const auto record = secure::Record::decode(*frame);
    if (!record) {
      records_rejected_.fetch_add(1, std::memory_order_relaxed);
      sense(ids::ControlPlaneEvent::kRecordRejected);
      continue;  // malformed framing: drop, never dispatch
    }
    auto opened = session.open(*record, console_aad());
    if (!opened.ok()) {
      // Forged, replayed or too-old record: authenticated-drop. The
      // session window advanced only if authentication succeeded, so a
      // flipped byte cannot desynchronize subsequent genuine records.
      records_rejected_.fetch_add(1, std::memory_order_relaxed);
      sense(ids::ControlPlaneEvent::kRecordRejected);
      continue;
    }
    sense(ids::ControlPlaneEvent::kRecordAccepted);
    const std::string response = dispatch(
        std::string_view{reinterpret_cast<const char*>(opened.value().data()),
                         opened.value().size()});
    commands_dispatched_.fetch_add(1, std::memory_order_relaxed);
    sense(ids::ControlPlaneEvent::kCommandDispatched);
    const secure::Record sealed = session.seal(
        core::from_string(response), console_aad());
    if (!net::write_frame(stream, sealed.encode(), timeout)) return;
    ++commands;
    if (config_.rotate_after_commands > 0 &&
        commands >= config_.rotate_after_commands) {
      // Session rotation: close after N commands so long-lived operator
      // sessions re-handshake onto fresh keys and a fresh replay window.
      control_rotations_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

std::string ConsoleService::dispatch(std::string_view plaintext) {
  std::string parse_error;
  const auto parsed = analysis::Json::parse(plaintext, &parse_error);
  if (!parsed || !parsed->is(analysis::Json::Kind::kObject)) {
    return rpc_error(0, "parse_error", parse_error.empty() ? "not an object"
                                                           : parse_error);
  }
  std::uint64_t id = 0;
  if (const analysis::Json* idv = parsed->find("id");
      idv != nullptr && idv->is(analysis::Json::Kind::kNumber)) {
    id = static_cast<std::uint64_t>(idv->as_number());
  }
  const analysis::Json* methodv = parsed->find("method");
  if (methodv == nullptr || !methodv->is(analysis::Json::Kind::kString)) {
    return rpc_error(id, "bad_request", "missing method");
  }
  const std::string& method = methodv->as_string();
  const analysis::Json* params = parsed->find("params");

  if (method == "ping") return rpc_result(id, "{\"pong\":true}");
  if (method == "pause") {
    fleet_.pause();
    return rpc_result(id, "{\"paused\":true}");
  }
  if (method == "resume") {
    fleet_.resume();
    return rpc_result(id, "{\"paused\":false}");
  }
  if (method == "step") {
    const auto steps = param_number(params, "steps", 1.0);
    if (!steps || *steps < 1.0 || *steps > 100000.0) {
      return rpc_error(id, "bad_param", "steps must be in [1, 100000]");
    }
    const std::size_t stepped =
        fleet_.control_step(static_cast<std::uint64_t>(*steps));
    return rpc_result(id, "{\"sessions_stepped\":" + std::to_string(stepped) + "}");
  }
  if (method == "inject-attack") {
    const auto session = param_number(params, "session", -1.0);
    const auto x = param_number(params, "x", 0.0);
    const auto y = param_number(params, "y", 0.0);
    const auto level = param_number(params, "level", 2.0);
    if (!session || !x || !y || !level || *session < 0.0) {
      return rpc_error(id, "bad_param", "need numeric session/x/y/level");
    }
    if (!fleet_.inject_attack(static_cast<SessionId>(*session), *x, *y,
                              static_cast<int>(*level))) {
      return rpc_error(id, "unknown_session",
                       "no such session: " + std::to_string(
                                                static_cast<SessionId>(*session)));
    }
    return rpc_result(id, "{\"injected\":true}");
  }
  if (method == "export") {
    const auto session = param_number(params, "session", -1.0);
    if (!session || *session < 0.0) {
      return rpc_error(id, "bad_param", "need numeric session");
    }
    const std::string artifact =
        fleet_.export_session_json(static_cast<SessionId>(*session));
    if (artifact.empty()) {
      return rpc_error(id, "unknown_session",
                       "no such session: " + std::to_string(
                                                static_cast<SessionId>(*session)));
    }
    return rpc_result(id, artifact);  // artifact is itself a JSON object
  }
  return rpc_error(id, "unknown_method", method);
}

// --- ConsoleClient ---------------------------------------------------------

core::Result<ConsoleClient> ConsoleClient::connect(std::uint16_t control_port,
                                                   const pki::Identity& identity,
                                                   const pki::TrustStore& trust,
                                                   crypto::Drbg& drbg,
                                                   std::string expected_peer,
                                                   int timeout_ms) {
  net::TcpStream stream = net::TcpStream::connect_local(control_port, timeout_ms);
  if (!stream.valid()) {
    return core::make_error("connect", "cannot reach control port " +
                                           std::to_string(control_port));
  }
  secure::Handshake handshake{identity, trust, 0, std::move(expected_peer)};
  const secure::HandshakeMsg1 msg1 = handshake.start(drbg);
  if (!net::write_frame(stream, msg1.encode(), timeout_ms)) {
    return core::make_error("io", "failed to send handshake flight 1");
  }
  const auto frame2 = net::read_frame(stream, timeout_ms);
  if (!frame2) return core::make_error("io", "no handshake flight 2");
  const auto msg2 = secure::HandshakeMsg2::decode(*frame2);
  if (!msg2) return core::make_error("bad_msg2", "malformed handshake flight 2");
  auto msg3 = handshake.consume_msg2(*msg2);
  if (!msg3.ok()) return msg3.error();
  if (!net::write_frame(stream, msg3.value().encode(), timeout_ms)) {
    return core::make_error("io", "failed to send handshake flight 3");
  }
  return ConsoleClient{std::move(stream), handshake.take_session(), timeout_ms};
}

core::Result<std::string> ConsoleClient::call(std::string_view method,
                                              std::string_view params_json) {
  std::string request = "{\"id\":" + std::to_string(next_id_++) +
                        ",\"method\":\"";
  append_json_escaped(request, method);
  request += "\",\"params\":";
  request += params_json;
  request += "}";
  const secure::Record sealed =
      session_.seal(core::from_string(request), console_aad());
  if (!net::write_frame(stream_, sealed.encode(), timeout_ms_)) {
    return core::make_error("io", "failed to send command");
  }
  const auto frame = net::read_frame(stream_, timeout_ms_);
  if (!frame) return core::make_error("io", "no response frame");
  const auto record = secure::Record::decode(*frame);
  if (!record) return core::make_error("bad_record", "malformed response record");
  auto opened = session_.open(*record, console_aad());
  if (!opened.ok()) return opened.error();
  return std::string(reinterpret_cast<const char*>(opened.value().data()),
                     opened.value().size());
}

bool ConsoleClient::send_raw_frame(std::span<const std::uint8_t> payload) {
  return net::write_frame(stream_, payload, timeout_ms_);
}

// --- http_get_local --------------------------------------------------------

core::Result<std::string> http_get_local(std::uint16_t port, std::string_view target,
                                         int timeout_ms) {
  net::TcpStream stream = net::TcpStream::connect_local(port, timeout_ms);
  if (!stream.valid()) {
    return core::make_error("connect", "cannot reach port " + std::to_string(port));
  }
  std::string request = "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (!stream.write_all(request, timeout_ms)) {
    return core::make_error("io", "failed to send request");
  }
  std::string response;
  std::uint8_t chunk[4096];
  for (;;) {
    const long n = stream.read_some(chunk, sizeof(chunk), timeout_ms);
    if (n < 0) return core::make_error("io", "read timeout");
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(chunk),
                    static_cast<std::size_t>(n));
    if (response.size() > (8u << 20)) {
      return core::make_error("too_large", "response exceeds 8 MiB");
    }
  }
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos || !response.starts_with("HTTP/1.1 ")) {
    return core::make_error("bad_response", "malformed HTTP response");
  }
  if (response.compare(9, 3, "200") != 0) {
    return core::make_error("status", response.substr(9, 3));
  }
  return response.substr(body_at + 4);
}

}  // namespace agrarsec::service
