// Embedded operations console for a running FleetService — the paper's
// §IV-B consequence made concrete: with limited connectivity, security
// operations (monitoring, incident response, evidence export) must run on
// the machine itself, so the telemetry substrate is served live instead
// of only exiting the process as files.
//
// Two planes, two listeners, two threads:
//
//  - HTTP plane (net::HttpServer, read-only): live JSON snapshots of the
//    running fleet, served to N concurrent observers by the poll-driven
//    server. GET /metrics (full fleet telemetry artifact incl. "wall."
//    instruments), /sessions (per-session status + step counts),
//    /utilization (per-shard busy-time table), /flight/<session>?n=K
//    (flight-recorder tail; add ?cursor=C for sequenced non-overlapping
//    polls), /ids (the console's own control-plane sensor counters), plus
//    two Server-Sent-Events streams: /stream/flight/<session>?cursor=C
//    (live flight-recorder events, payload bytes identical to the polled
//    JSONL export, explicit `dropped` frames when a subscriber lags past
//    the ring) and /stream/metrics (periodic snapshot push). Strictly
//    read-only by construction: every route maps to a const FleetService
//    snapshot method and POST is refused outright.
//
//  - Control plane (framed TCP + secure::Session): the mutating verbs —
//    pause / resume / step / inject-attack / export — are reachable only
//    through our own Noise-style channel: the client runs the SIGMA-style
//    pki/ handshake (flights framed as be32 length-prefixed messages),
//    then every command travels as a sealed secure::Record whose sliding
//    replay window now tolerates reordering. JSON-RPC-style plaintext:
//      {"id":1,"method":"pause","params":{}}
//    answered with {"id":1,"result":...} or {"id":1,"error":{...}}.
//    An unauthenticated or malformed record is dropped (counted, never
//    dispatched), so byte flips on the wire cannot mutate fleet state.
//
// Both planes serialize against the simulation through FleetService's
// internal mutex — a snapshot lands between step batches, never inside
// one, and determinism of the per-session exports is untouched by an
// attached console (pinned by the console tests).
//
// The console is also a first-class IDS sensor: the control plane feeds
// its own security-relevant events (handshake failures, authorization
// denials, rejected records, command rates) into a private
// ids::IntrusionDetectionSystem via observe_control — an attack on the
// control plane is itself a detectable event. The sensor's alerts are
// served at /ids and never touch the fleet's deterministic telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/result.h"
#include "crypto/random.h"
#include "ids/ids.h"
#include "net/http.h"
#include "net/stream.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/session.h"
#include "service/fleet_service.h"

namespace agrarsec::service {

/// AAD bound into every control record (domain-separates console traffic
/// from other uses of the same session keys).
inline constexpr std::string_view kConsoleAad = "agrarsec-console-v1";

struct ConsoleConfig {
  std::uint16_t http_port = 0;     ///< 0 = ephemeral
  std::uint16_t control_port = 0;  ///< 0 = ephemeral
  int io_timeout_ms = 2000;
  /// Sim time used to validate client certificate chains (the console has
  /// no sim clock of its own; operators enroll long-lived certs).
  std::int64_t cert_validation_time = 0;
  /// Leaf subjects allowed on the control plane. Empty = any peer that
  /// validates against the trust store.
  std::vector<std::string> allowed_subjects;
  /// Events returned by /flight/<session> when ?n= is absent.
  std::size_t flight_tail_default = 64;
  int max_commands_per_connection = 1024;
  /// Control-session rotation: after this many dispatched commands the
  /// server closes the control connection, forcing the operator client to
  /// re-run the PKI handshake (fresh session keys + replay window). 0
  /// disables rotation; the hard cap above still applies.
  int rotate_after_commands = 256;
  /// Concurrent HTTP connections served by the poll loop (beyond it,
  /// deterministic 503).
  std::size_t max_http_connections = 32;
  /// Snapshot cadence of the /stream/metrics SSE push.
  int stream_interval_ms = 200;
  /// Max flight events forwarded per SSE pump tick and per connection.
  std::size_t stream_chunk_events = 256;
  /// Thresholds for the console's control-plane IDS sensor (anomaly
  /// detectors are forced off — the sensor is signature-only).
  ids::IdsConfig sensor;
};

class ConsoleService {
 public:
  /// The console authenticates as `identity` (enroll it with an
  /// operator-station role) and validates clients against `trust`.
  ConsoleService(FleetService& fleet, pki::Identity identity,
                 pki::TrustStore trust, std::uint64_t drbg_seed,
                 ConsoleConfig config = {});
  ~ConsoleService();

  ConsoleService(const ConsoleService&) = delete;
  ConsoleService& operator=(const ConsoleService&) = delete;

  /// Binds both listeners and launches both server threads.
  core::Status start();
  /// Stops and joins both threads. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return http_.running(); }

  [[nodiscard]] std::uint16_t http_port() const { return http_.port(); }
  [[nodiscard]] std::uint16_t control_port() const { return control_listener_.port(); }

  /// Control-plane counters (server-thread written, relaxed reads).
  [[nodiscard]] std::uint64_t control_sessions_established() const {
    return sessions_established_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t commands_dispatched() const {
    return commands_dispatched_.load(std::memory_order_relaxed);
  }
  /// Frames dropped before dispatch: bad framing, failed authentication,
  /// replayed records, malformed JSON.
  [[nodiscard]] std::uint64_t records_rejected() const {
    return records_rejected_.load(std::memory_order_relaxed);
  }
  /// Control sessions closed by the rotation policy (the client must
  /// re-handshake to continue).
  [[nodiscard]] std::uint64_t control_rotations() const {
    return control_rotations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const net::HttpServer& http() const { return http_; }

  /// Control-plane sensor alert count for one rule (e.g.
  /// "control-bruteforce"); thread-safe against the control thread.
  [[nodiscard]] std::uint64_t sensor_alert_count(const std::string& rule) const;
  [[nodiscard]] std::uint64_t sensor_total_alerts() const;

 private:
  net::HttpResponse route(const net::HttpRequest& request);
  net::HttpResponse route_flight(const net::HttpRequest& request,
                                 std::string_view id_text);
  net::HttpResponse route_stream_flight(const net::HttpRequest& request,
                                        std::string_view id_text);
  net::HttpResponse route_stream_metrics();
  [[nodiscard]] std::string ids_json() const;
  void control_loop();
  void handle_control_connection(net::TcpStream stream);
  /// Feeds one control-plane event into the IDS sensor (control thread).
  void sense(ids::ControlPlaneEvent event, std::uint64_t subject = 0);
  /// Executes one authenticated command; returns the response JSON.
  std::string dispatch(std::string_view plaintext);

  FleetService& fleet_;
  pki::Identity identity_;
  pki::TrustStore trust_;
  crypto::Drbg drbg_;  ///< control-thread only
  ConsoleConfig config_;

  net::HttpServer http_;
  net::TcpListener control_listener_;
  std::thread control_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sessions_established_{0};
  std::atomic<std::uint64_t> commands_dispatched_{0};
  std::atomic<std::uint64_t> records_rejected_{0};
  std::atomic<std::uint64_t> control_rotations_{0};

  /// Control-plane sensor: written by the control thread, read by the
  /// HTTP thread (/ids) — guarded by sensor_mu_, never by fleet state.
  mutable std::mutex sensor_mu_;
  ids::IntrusionDetectionSystem sensor_;
};

/// Operator-side control client: connects, runs the handshake as
/// initiator, then exchanges sealed JSON-RPC records. Used by the tests,
/// the fleet_console example and the check.sh smoke.
class ConsoleClient {
 public:
  /// `expected_peer`: require the console's leaf subject (empty = any
  /// subject the trust store validates).
  static core::Result<ConsoleClient> connect(std::uint16_t control_port,
                                             const pki::Identity& identity,
                                             const pki::TrustStore& trust,
                                             crypto::Drbg& drbg,
                                             std::string expected_peer = {},
                                             int timeout_ms = 2000);

  /// Sends {"id":<auto>,"method":method,"params":params_json} sealed, and
  /// returns the response plaintext (a JSON object).
  core::Result<std::string> call(std::string_view method,
                                 std::string_view params_json = "{}");

  /// Sends raw bytes as one frame, bypassing the record layer — the
  /// torture tests use this to prove malformed input cannot crash or
  /// mutate the fleet.
  [[nodiscard]] bool send_raw_frame(std::span<const std::uint8_t> payload);

  [[nodiscard]] const std::string& peer_subject() const {
    return session_.peer_subject();
  }

 private:
  ConsoleClient(net::TcpStream stream, secure::Session session, int timeout_ms)
      : stream_(std::move(stream)), session_(std::move(session)),
        timeout_ms_(timeout_ms) {}

  net::TcpStream stream_;
  secure::Session session_;
  std::uint64_t next_id_ = 1;
  int timeout_ms_;
};

/// Minimal loopback HTTP GET over a raw socket (one-shot connection).
/// Returns the response body; fails on connect/timeout/non-200.
core::Result<std::string> http_get_local(std::uint16_t port, std::string_view target,
                                         int timeout_ms = 2000);

}  // namespace agrarsec::service
