// Embedded operations console for a running FleetService — the paper's
// §IV-B consequence made concrete: with limited connectivity, security
// operations (monitoring, incident response, evidence export) must run on
// the machine itself, so the telemetry substrate is served live instead
// of only exiting the process as files.
//
// Two planes, two listeners, two threads:
//
//  - HTTP plane (net::HttpServer, read-only): live JSON snapshots of the
//    running fleet. GET /metrics (full fleet telemetry artifact incl.
//    "wall." instruments), /sessions (per-session status + step counts),
//    /utilization (per-shard busy-time table), /flight/<session>?n=K
//    (flight-recorder tail). Strictly read-only by construction: every
//    route maps to a const FleetService snapshot method and POST is
//    refused outright.
//
//  - Control plane (framed TCP + secure::Session): the mutating verbs —
//    pause / resume / step / inject-attack / export — are reachable only
//    through our own Noise-style channel: the client runs the SIGMA-style
//    pki/ handshake (flights framed as be32 length-prefixed messages),
//    then every command travels as a sealed secure::Record whose sliding
//    replay window now tolerates reordering. JSON-RPC-style plaintext:
//      {"id":1,"method":"pause","params":{}}
//    answered with {"id":1,"result":...} or {"id":1,"error":{...}}.
//    An unauthenticated or malformed record is dropped (counted, never
//    dispatched), so byte flips on the wire cannot mutate fleet state.
//
// Both planes serialize against the simulation through FleetService's
// internal mutex — a snapshot lands between step batches, never inside
// one, and determinism of the per-session exports is untouched by an
// attached console (pinned by the console tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/result.h"
#include "crypto/random.h"
#include "net/http.h"
#include "net/stream.h"
#include "pki/identity.h"
#include "pki/trust_store.h"
#include "secure/session.h"
#include "service/fleet_service.h"

namespace agrarsec::service {

/// AAD bound into every control record (domain-separates console traffic
/// from other uses of the same session keys).
inline constexpr std::string_view kConsoleAad = "agrarsec-console-v1";

struct ConsoleConfig {
  std::uint16_t http_port = 0;     ///< 0 = ephemeral
  std::uint16_t control_port = 0;  ///< 0 = ephemeral
  int io_timeout_ms = 2000;
  /// Sim time used to validate client certificate chains (the console has
  /// no sim clock of its own; operators enroll long-lived certs).
  std::int64_t cert_validation_time = 0;
  /// Leaf subjects allowed on the control plane. Empty = any peer that
  /// validates against the trust store.
  std::vector<std::string> allowed_subjects;
  /// Events returned by /flight/<session> when ?n= is absent.
  std::size_t flight_tail_default = 64;
  int max_commands_per_connection = 1024;
};

class ConsoleService {
 public:
  /// The console authenticates as `identity` (enroll it with an
  /// operator-station role) and validates clients against `trust`.
  ConsoleService(FleetService& fleet, pki::Identity identity,
                 pki::TrustStore trust, std::uint64_t drbg_seed,
                 ConsoleConfig config = {});
  ~ConsoleService();

  ConsoleService(const ConsoleService&) = delete;
  ConsoleService& operator=(const ConsoleService&) = delete;

  /// Binds both listeners and launches both server threads.
  core::Status start();
  /// Stops and joins both threads. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return http_.running(); }

  [[nodiscard]] std::uint16_t http_port() const { return http_.port(); }
  [[nodiscard]] std::uint16_t control_port() const { return control_listener_.port(); }

  /// Control-plane counters (server-thread written, relaxed reads).
  [[nodiscard]] std::uint64_t control_sessions_established() const {
    return sessions_established_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t commands_dispatched() const {
    return commands_dispatched_.load(std::memory_order_relaxed);
  }
  /// Frames dropped before dispatch: bad framing, failed authentication,
  /// replayed records, malformed JSON.
  [[nodiscard]] std::uint64_t records_rejected() const {
    return records_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const net::HttpServer& http() const { return http_; }

 private:
  net::HttpResponse route(const net::HttpRequest& request);
  void control_loop();
  void handle_control_connection(net::TcpStream stream);
  /// Executes one authenticated command; returns the response JSON.
  std::string dispatch(std::string_view plaintext);

  FleetService& fleet_;
  pki::Identity identity_;
  pki::TrustStore trust_;
  crypto::Drbg drbg_;  ///< control-thread only
  ConsoleConfig config_;

  net::HttpServer http_;
  net::TcpListener control_listener_;
  std::thread control_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> sessions_established_{0};
  std::atomic<std::uint64_t> commands_dispatched_{0};
  std::atomic<std::uint64_t> records_rejected_{0};
};

/// Operator-side control client: connects, runs the handshake as
/// initiator, then exchanges sealed JSON-RPC records. Used by the tests,
/// the fleet_console example and the check.sh smoke.
class ConsoleClient {
 public:
  /// `expected_peer`: require the console's leaf subject (empty = any
  /// subject the trust store validates).
  static core::Result<ConsoleClient> connect(std::uint16_t control_port,
                                             const pki::Identity& identity,
                                             const pki::TrustStore& trust,
                                             crypto::Drbg& drbg,
                                             std::string expected_peer = {},
                                             int timeout_ms = 2000);

  /// Sends {"id":<auto>,"method":method,"params":params_json} sealed, and
  /// returns the response plaintext (a JSON object).
  core::Result<std::string> call(std::string_view method,
                                 std::string_view params_json = "{}");

  /// Sends raw bytes as one frame, bypassing the record layer — the
  /// torture tests use this to prove malformed input cannot crash or
  /// mutate the fleet.
  [[nodiscard]] bool send_raw_frame(std::span<const std::uint8_t> payload);

  [[nodiscard]] const std::string& peer_subject() const {
    return session_.peer_subject();
  }

 private:
  ConsoleClient(net::TcpStream stream, secure::Session session, int timeout_ms)
      : stream_(std::move(stream)), session_(std::move(session)),
        timeout_ms_(timeout_ms) {}

  net::TcpStream stream_;
  secure::Session session_;
  std::uint64_t next_id_ = 1;
  int timeout_ms_;
};

/// Minimal loopback HTTP GET over a raw socket (one-shot connection).
/// Returns the response body; fails on connect/timeout/non-200.
core::Result<std::string> http_get_local(std::uint16_t port, std::string_view target,
                                         int timeout_ms = 2000);

}  // namespace agrarsec::service
