// FleetService: the multi-worksite session daemon of ROADMAP item 1. The
// paper (§IV-B) argues that limited connectivity pushes forestry machines
// into long-running on-site autonomy; covering an operational design
// domain therefore means running MANY independent worksite configurations
// concurrently, not one. The service owns N SecuredWorksite sessions
// behind a create/step/teardown/query API and batches session stepping
// across the core::ThreadPool at one-worksite-per-task granularity
// (coarse-grained load balance; a session is the unit of parallelism, so
// its own worksite always runs threads=1).
//
// Determinism contract (DESIGN.md §12): a session is fully self-contained
// — its SecuredWorksite owns its RNG streams, radio, PKI and a private
// obs::Telemetry — so a given (config, seed) produces a bit-identical
// trajectory and deterministic telemetry export regardless of how many
// other sessions run, how batches interleave, or the service thread
// count. Session seeds can be derived from a fleet seed by stateless
// fork_stream keying (derive_session_seed), so a session's stream is a
// pure function of (fleet_seed, key), never of creation order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "integration/secured_worksite.h"
#include "obs/telemetry.h"

namespace agrarsec::service {

/// Stable session handle; ids are never reused within a service lifetime.
using SessionId = std::uint64_t;

struct FleetServiceConfig {
  /// Worker shards for step_all() batches. 1 = serial (default), 0 =
  /// std::thread::hardware_concurrency(). Per-session results are
  /// bit-identical for every value (the fleet parity tests enforce this).
  std::size_t threads = 1;
  /// Root seed for derive_session_seed()/create_session_keyed().
  std::uint64_t fleet_seed = 1;
  /// Shape of the service-level telemetry (batch phases, session
  /// counters). Per-session telemetry lives inside each SecuredWorksite
  /// and is configured per session instead.
  obs::TelemetryConfig telemetry;
};

class FleetService {
 public:
  explicit FleetService(FleetServiceConfig config = {});
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // --- session lifecycle ---
  /// Creates a session from an explicit config (config.seed is used as
  /// given). The session's worksite thread count is forced to 1: sessions
  /// are the parallel grain, nested pools would only oversubscribe.
  SessionId create_session(integration::SecuredWorksiteConfig config);
  /// Creates a session whose seed is derived from (fleet_seed, key) by
  /// stateless fork — the same key always yields the same session stream,
  /// independent of how many sessions exist or their creation order.
  SessionId create_session_keyed(integration::SecuredWorksiteConfig config,
                                 std::uint64_t key);
  /// Pure function of its inputs (core::Rng::fork_stream).
  [[nodiscard]] static std::uint64_t derive_session_seed(std::uint64_t fleet_seed,
                                                         std::uint64_t key);
  /// Tears the session down (false when the id is unknown).
  bool destroy_session(SessionId id);

  // --- stepping ---
  /// Advances every live session by `steps` full-stack steps. Sessions
  /// are batched across the pool in ascending id order, one session per
  /// work item; a session never splits across shards, so all its state
  /// stays thread-local for the whole batch. No-op while paused.
  void step_all(std::uint64_t steps = 1);
  /// Advances one session serially (false when the id is unknown).
  /// No-op (returning true) while paused.
  bool step_session(SessionId id, std::uint64_t steps = 1);

  // --- operations-console control plane ---
  // Thread-safety: every lifecycle/stepping/snapshot entry point
  // serializes on an internal mutex, so the console's server threads can
  // pause, inject and snapshot concurrently with a driver loop calling
  // step_all. The lock is held for whole batches — console reads land
  // between batches and never observe (or perturb) a half-stepped fleet;
  // determinism is untouched because serialization changes no sim input.
  /// Freezes step_all/step_session (they become no-ops) until resume().
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_.load(std::memory_order_relaxed); }
  /// Steps every session even while paused — the operator's single-step.
  /// Returns the number of sessions stepped.
  std::size_t control_step(std::uint64_t steps = 1);
  /// Drops an attacker radio into one session's medium (false when the
  /// session id is unknown).
  bool inject_attack(SessionId id, double x, double y, int level);

  // --- console snapshots (each locks; safe against concurrent step_all) ---
  /// Full fleet telemetry artifact (registry incl. "wall." instruments,
  /// phases, shard busy time, flight recorder + wall annex).
  [[nodiscard]] std::string metrics_json() const;
  /// Per-session status table: id, steps and security counters per live
  /// session in ascending id order, plus fleet totals.
  [[nodiscard]] std::string sessions_json() const;
  /// Per-shard busy-time table of the service pool.
  [[nodiscard]] std::string utilization_json() const;
  /// Tail of one session's flight recorder as a JSON array (newest-last,
  /// at most `max_events` events; empty string when the id is unknown).
  /// Also carries "next_cursor" — pass it to flight_since_json (or back to
  /// /flight/<id>?cursor=) to resume without overlapping tails.
  [[nodiscard]] std::string flight_tail_json(SessionId id,
                                             std::size_t max_events = 64) const;

  /// One cursor-sequenced read from a session's flight recorder. The
  /// JSONL payload is produced by FlightRecorder::read_since, so its
  /// bytes match the polled to_jsonl() export line-for-line.
  struct FlightChunk {
    bool ok = false;               ///< false: unknown session id
    std::uint64_t first_seq = 0;   ///< seq of the first event in `jsonl`
    std::size_t events = 0;        ///< events in `jsonl`
    std::uint64_t dropped = 0;     ///< ring overwrote these before the read
    std::uint64_t next_cursor = 0; ///< resume cursor
    std::uint64_t total_recorded = 0;
    std::string jsonl;             ///< newline-terminated event lines
  };
  [[nodiscard]] FlightChunk flight_read(SessionId id, std::uint64_t cursor,
                                        std::size_t max_events) const;
  /// flight_read rendered for the polling endpoint:
  /// {"session":..,"total_recorded":..,"dropped":..,"next_cursor":..,
  ///  "events":[...]} (empty string when the id is unknown).
  [[nodiscard]] std::string flight_since_json(SessionId id, std::uint64_t cursor,
                                              std::size_t max_events = 64) const;
  /// Locked variant of session_deterministic_json for the console's
  /// export verb.
  [[nodiscard]] std::string export_session_json(SessionId id) const;

  // --- queries ---
  [[nodiscard]] std::size_t session_count() const;
  /// Live ids in ascending order (the step_all batch order).
  [[nodiscard]] std::vector<SessionId> session_ids() const;
  /// Session access (nullptr when unknown). The pointer stays valid until
  /// the session is destroyed; do not call while step_all is in flight.
  [[nodiscard]] integration::SecuredWorksite* session(SessionId id);
  [[nodiscard]] const integration::SecuredWorksite* session(SessionId id) const;
  /// Steps taken by one session / summed over every session ever stepped
  /// (destroyed sessions keep counting toward the total).
  [[nodiscard]] std::uint64_t session_steps(SessionId id) const;
  [[nodiscard]] std::uint64_t total_session_steps() const;
  /// Security counters summed over live sessions in ascending id order.
  [[nodiscard]] integration::SecurityMetrics aggregate_security_metrics() const;
  /// Per-session deterministic export (empty string when unknown) — the
  /// artifact the fleet determinism suite compares byte-for-byte.
  [[nodiscard]] std::string session_deterministic_json(SessionId id) const;

  /// Service-level telemetry: fleet counters, batch phase spans, shard
  /// busy time. Wall-clock only beyond the counters; per-session
  /// deterministic exports come from the sessions themselves.
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }
  [[nodiscard]] const FleetServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const;

 private:
  struct Session {
    SessionId id = 0;
    std::unique_ptr<integration::SecuredWorksite> site;
    std::uint64_t steps = 0;
  };

  SessionId insert_session(integration::SecuredWorksiteConfig config);
  void step_batch_locked(std::uint64_t steps);

  FleetServiceConfig config_;
  /// Serializes lifecycle, stepping and console snapshots (see the
  /// control-plane section above). Mutable: snapshot methods are const.
  mutable std::mutex mu_;
  std::atomic<bool> paused_{false};
  /// Declared before the pool: the shard observer instruments into it.
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<core::ThreadPool> pool_;
  /// Ordered by id so every batch and every aggregate walks sessions in
  /// the same deterministic order.
  std::map<SessionId, std::unique_ptr<Session>> sessions_;
  SessionId next_id_ = 1;
  std::uint64_t retired_steps_ = 0;  ///< steps of destroyed sessions
  /// Dense batch view rebuilt by step_all (index -> session, id order).
  std::vector<Session*> batch_;

  obs::Counter* c_created_ = nullptr;
  obs::Counter* c_destroyed_ = nullptr;
  obs::Counter* c_session_steps_ = nullptr;  ///< bumped per shard lane
  obs::Gauge* g_active_ = nullptr;
  obs::Histogram* h_batch_wall_ = nullptr;  ///< "wall." prefix: full artifact only
  obs::PhaseId ph_batch_ = 0;
};

}  // namespace agrarsec::service
