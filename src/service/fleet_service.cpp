#include "service/fleet_service.h"

#include "core/rng.h"

namespace agrarsec::service {

namespace {
/// fork_stream domain for session-seed derivation ("FLEET"): disjoint
/// from every per-entity domain the worksite uses, so a derived session
/// seed never correlates with any entity stream of any session.
constexpr std::uint64_t kSessionSeedDomain = 0x464C454554ULL;
}  // namespace

FleetService::FleetService(FleetServiceConfig config) : config_(config) {
  telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
  obs::Registry& reg = telemetry_->registry();
  c_created_ = &reg.counter("fleet.sessions_created");
  c_destroyed_ = &reg.counter("fleet.sessions_destroyed");
  c_session_steps_ = &reg.counter("fleet.session_steps");
  g_active_ = &reg.gauge("fleet.sessions_active");
  // "wall." prefix: timing histogram, full artifact (/metrics) only —
  // excluded from the deterministic view like the worksite step timer.
  h_batch_wall_ = &reg.histogram("wall.fleet_batch_us", 0.0, 100000.0, 20);
  ph_batch_ = telemetry_->tracer().phase("fleet.step_batch");

  if (config_.threads != 1) {
    pool_ = std::make_unique<core::ThreadPool>(config_.threads);
    // Observation-only busy-time tap, per-shard tracer lanes (same
    // pattern as sim::Worksite).
    pool_->set_shard_observer([this](std::size_t shard, std::uint64_t busy_ns) {
      telemetry_->tracer().add_shard_busy(shard, busy_ns);
    });
  }
  telemetry_->ensure_shards(shard_count());
}

FleetService::~FleetService() = default;

std::size_t FleetService::shard_count() const {
  return pool_ ? pool_->shard_count() : 1;
}

std::uint64_t FleetService::derive_session_seed(std::uint64_t fleet_seed,
                                                std::uint64_t key) {
  return core::Rng::fork_stream(fleet_seed, kSessionSeedDomain, key).next_u64();
}

SessionId FleetService::insert_session(integration::SecuredWorksiteConfig config) {
  // The session is the unit of parallelism: its worksite must not spin up
  // a nested pool inside a step_all work item. Its SecuredWorksite
  // allocates its own telemetry from config.telemetry, so sessions share
  // nothing observable — that isolation is the determinism contract.
  config.worksite.threads = 1;
  config.worksite.telemetry = nullptr;

  const std::lock_guard<std::mutex> lock(mu_);
  const SessionId id = next_id_++;
  auto session = std::make_unique<Session>();
  session->id = id;
  session->site = std::make_unique<integration::SecuredWorksite>(std::move(config));
  sessions_.emplace(id, std::move(session));

  c_created_->add();
  g_active_->set(static_cast<double>(sessions_.size()));
  telemetry_->recorder().record(0, "fleet", "session-created", id);
  return id;
}

SessionId FleetService::create_session(integration::SecuredWorksiteConfig config) {
  return insert_session(std::move(config));
}

SessionId FleetService::create_session_keyed(
    integration::SecuredWorksiteConfig config, std::uint64_t key) {
  config.seed = derive_session_seed(config_.fleet_seed, key);
  return insert_session(std::move(config));
}

bool FleetService::destroy_session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  retired_steps_ += it->second->steps;
  sessions_.erase(it);
  c_destroyed_->add();
  g_active_->set(static_cast<double>(sessions_.size()));
  telemetry_->recorder().record(0, "fleet", "session-destroyed", id);
  return true;
}

void FleetService::step_all(std::uint64_t steps) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (paused_.load(std::memory_order_relaxed)) return;
  step_batch_locked(steps);
}

void FleetService::step_batch_locked(std::uint64_t steps) {
  if (steps == 0 || sessions_.empty()) return;
  const std::uint64_t batch_start_ns = obs::Tracer::now_ns();
  batch_.clear();
  for (auto& [id, session] : sessions_) batch_.push_back(session.get());

  obs::Tracer::Span span{telemetry_->tracer(), ph_batch_};
  obs::Counter* session_steps = c_session_steps_;
  const auto body = [this, steps, session_steps](std::size_t begin, std::size_t end,
                                                 std::size_t shard) {
    for (std::size_t i = begin; i < end; ++i) {
      Session& session = *batch_[i];
      // The whole session steps on this shard: no other thread touches
      // any of its state for the duration of the batch.
      for (std::uint64_t s = 0; s < steps; ++s) session.site->step();
      session.steps += steps;
      session_steps->add(steps, shard);
    }
  };
  if (pool_) {
    pool_->parallel_for(batch_.size(), body);
  } else {
    body(0, batch_.size(), 0);
  }
  h_batch_wall_->add(
      static_cast<double>(obs::Tracer::now_ns() - batch_start_ns) / 1000.0);
}

bool FleetService::step_session(SessionId id, std::uint64_t steps) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  if (paused_.load(std::memory_order_relaxed)) return true;
  Session& session = *it->second;
  for (std::uint64_t s = 0; s < steps; ++s) session.site->step();
  session.steps += steps;
  c_session_steps_->add(steps);
  return true;
}

std::size_t FleetService::session_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<SessionId> FleetService::session_ids() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

integration::SecuredWorksite* FleetService::session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->site.get();
}

const integration::SecuredWorksite* FleetService::session(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->site.get();
}

std::uint64_t FleetService::session_steps(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->steps;
}

std::uint64_t FleetService::total_session_steps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = retired_steps_;
  for (const auto& [id, session] : sessions_) total += session->steps;
  return total;
}

integration::SecurityMetrics FleetService::aggregate_security_metrics() const {
  const std::lock_guard<std::mutex> lock(mu_);
  integration::SecurityMetrics total;
  for (const auto& [id, session] : sessions_) {
    const integration::SecurityMetrics m = session->site->security_metrics();
    total.detection_reports_sent += m.detection_reports_sent;
    total.detection_reports_accepted += m.detection_reports_accepted;
    total.detection_reports_rejected += m.detection_reports_rejected;
    total.spoofed_messages_accepted += m.spoofed_messages_accepted;
    total.estops_from_ids += m.estops_from_ids;
  }
  return total;
}

std::string FleetService::session_deterministic_json(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->site->telemetry().deterministic_json();
}

// --- operations-console control plane --------------------------------------

void FleetService::pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!paused_.exchange(true, std::memory_order_relaxed)) {
    telemetry_->recorder().record(0, "fleet", "paused");
  }
}

void FleetService::resume() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (paused_.exchange(false, std::memory_order_relaxed)) {
    telemetry_->recorder().record(0, "fleet", "resumed");
  }
}

std::size_t FleetService::control_step(std::uint64_t steps) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t stepped = sessions_.size();
  step_batch_locked(steps);
  return stepped;
}

bool FleetService::inject_attack(SessionId id, double x, double y, int level) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  it->second->site->add_attacker({x, y}, level);
  telemetry_->recorder().record(0, "fleet", "attack-injected", id,
                                static_cast<std::uint64_t>(level));
  return true;
}

std::string FleetService::metrics_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return telemetry_->to_json();
}

std::string FleetService::sessions_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"paused\":";
  out += paused_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"session_count\":" + std::to_string(sessions_.size());
  std::uint64_t total = retired_steps_;
  out += ",\"sessions\":[";
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    total += session->steps;
    const integration::SecurityMetrics m = session->site->security_metrics();
    if (!first) out.push_back(',');
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"steps\":" + std::to_string(session->steps);
    out += ",\"forwarders\":" + std::to_string(session->site->forwarder_count());
    out += ",\"reports_accepted\":" + std::to_string(m.detection_reports_accepted);
    out += ",\"reports_rejected\":" + std::to_string(m.detection_reports_rejected);
    out += ",\"estops_from_ids\":" + std::to_string(m.estops_from_ids);
    out.push_back('}');
  }
  out += "],\"total_session_steps\":" + std::to_string(total);
  out.push_back('}');
  return out;
}

std::string FleetService::utilization_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const obs::Tracer& tracer = telemetry_->tracer();
  std::string out = "{\"shards\":[";
  for (std::size_t shard = 0; shard < tracer.shard_count(); ++shard) {
    if (shard != 0) out.push_back(',');
    out += "{\"shard\":" + std::to_string(shard);
    out += ",\"busy_ns\":" + std::to_string(tracer.shard_busy_ns(shard));
    out.push_back('}');
  }
  out += "]}";
  return out;
}

namespace {

/// Renders newline-terminated JSONL event lines as a JSON array body.
void append_jsonl_as_array(std::string& out, const std::string& jsonl) {
  out.push_back('[');
  std::size_t pos = 0;
  bool first = true;
  while (pos < jsonl.size()) {
    std::size_t nl = jsonl.find('\n', pos);
    if (nl == std::string::npos) nl = jsonl.size();
    if (nl > pos) {
      if (!first) out.push_back(',');
      first = false;
      out.append(jsonl, pos, nl - pos);
    }
    pos = nl + 1;
  }
  out.push_back(']');
}

}  // namespace

FleetService::FlightChunk FleetService::flight_read(SessionId id,
                                                    std::uint64_t cursor,
                                                    std::size_t max_events) const {
  const std::lock_guard<std::mutex> lock(mu_);
  FlightChunk chunk;
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return chunk;
  const obs::FlightRecorder& recorder = it->second->site->telemetry().recorder();
  const auto result = recorder.read_since(cursor, max_events, chunk.jsonl);
  chunk.ok = true;
  chunk.events = result.events;
  chunk.dropped = result.dropped;
  chunk.next_cursor = result.next_cursor;
  chunk.first_seq = result.next_cursor - result.events;
  chunk.total_recorded = recorder.total_recorded();
  return chunk;
}

std::string FleetService::flight_since_json(SessionId id, std::uint64_t cursor,
                                            std::size_t max_events) const {
  const FlightChunk chunk = flight_read(id, cursor, max_events);
  if (!chunk.ok) return {};
  std::string out = "{\"session\":" + std::to_string(id);
  out += ",\"total_recorded\":" + std::to_string(chunk.total_recorded);
  out += ",\"dropped\":" + std::to_string(chunk.dropped);
  out += ",\"next_cursor\":" + std::to_string(chunk.next_cursor);
  out += ",\"events\":";
  append_jsonl_as_array(out, chunk.jsonl);
  out += "}";
  return out;
}

std::string FleetService::flight_tail_json(SessionId id,
                                           std::size_t max_events) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  const obs::FlightRecorder& recorder = it->second->site->telemetry().recorder();
  // Tail = a cursor read starting max_events before the newest event; the
  // lines come from the same serializer as the polled JSONL export.
  const std::uint64_t total = recorder.total_recorded();
  const std::uint64_t start =
      total > max_events ? total - max_events : 0;
  std::string jsonl;
  const auto result = recorder.read_since(start, max_events, jsonl);
  std::string out = "{\"session\":" + std::to_string(id);
  out += ",\"total_recorded\":" + std::to_string(total);
  out += ",\"next_cursor\":" + std::to_string(result.next_cursor);
  out += ",\"events\":";
  append_jsonl_as_array(out, jsonl);
  out += "}";
  return out;
}

std::string FleetService::export_session_json(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->site->telemetry().deterministic_json();
}

}  // namespace agrarsec::service
