#include "service/fleet_service.h"

#include "core/rng.h"

namespace agrarsec::service {

namespace {
/// fork_stream domain for session-seed derivation ("FLEET"): disjoint
/// from every per-entity domain the worksite uses, so a derived session
/// seed never correlates with any entity stream of any session.
constexpr std::uint64_t kSessionSeedDomain = 0x464C454554ULL;
}  // namespace

FleetService::FleetService(FleetServiceConfig config) : config_(config) {
  telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
  obs::Registry& reg = telemetry_->registry();
  c_created_ = &reg.counter("fleet.sessions_created");
  c_destroyed_ = &reg.counter("fleet.sessions_destroyed");
  c_session_steps_ = &reg.counter("fleet.session_steps");
  g_active_ = &reg.gauge("fleet.sessions_active");
  ph_batch_ = telemetry_->tracer().phase("fleet.step_batch");

  if (config_.threads != 1) {
    pool_ = std::make_unique<core::ThreadPool>(config_.threads);
    // Observation-only busy-time tap, per-shard tracer lanes (same
    // pattern as sim::Worksite).
    pool_->set_shard_observer([this](std::size_t shard, std::uint64_t busy_ns) {
      telemetry_->tracer().add_shard_busy(shard, busy_ns);
    });
  }
  telemetry_->ensure_shards(shard_count());
}

FleetService::~FleetService() = default;

std::size_t FleetService::shard_count() const {
  return pool_ ? pool_->shard_count() : 1;
}

std::uint64_t FleetService::derive_session_seed(std::uint64_t fleet_seed,
                                                std::uint64_t key) {
  return core::Rng::fork_stream(fleet_seed, kSessionSeedDomain, key).next_u64();
}

SessionId FleetService::insert_session(integration::SecuredWorksiteConfig config) {
  // The session is the unit of parallelism: its worksite must not spin up
  // a nested pool inside a step_all work item. Its SecuredWorksite
  // allocates its own telemetry from config.telemetry, so sessions share
  // nothing observable — that isolation is the determinism contract.
  config.worksite.threads = 1;
  config.worksite.telemetry = nullptr;

  const SessionId id = next_id_++;
  auto session = std::make_unique<Session>();
  session->id = id;
  session->site = std::make_unique<integration::SecuredWorksite>(std::move(config));
  sessions_.emplace(id, std::move(session));

  c_created_->add();
  g_active_->set(static_cast<double>(sessions_.size()));
  telemetry_->recorder().record(0, "fleet", "session-created", id);
  return id;
}

SessionId FleetService::create_session(integration::SecuredWorksiteConfig config) {
  return insert_session(std::move(config));
}

SessionId FleetService::create_session_keyed(
    integration::SecuredWorksiteConfig config, std::uint64_t key) {
  config.seed = derive_session_seed(config_.fleet_seed, key);
  return insert_session(std::move(config));
}

bool FleetService::destroy_session(SessionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  retired_steps_ += it->second->steps;
  sessions_.erase(it);
  c_destroyed_->add();
  g_active_->set(static_cast<double>(sessions_.size()));
  telemetry_->recorder().record(0, "fleet", "session-destroyed", id);
  return true;
}

void FleetService::step_all(std::uint64_t steps) {
  if (steps == 0 || sessions_.empty()) return;
  batch_.clear();
  for (auto& [id, session] : sessions_) batch_.push_back(session.get());

  obs::Tracer::Span span{telemetry_->tracer(), ph_batch_};
  obs::Counter* session_steps = c_session_steps_;
  const auto body = [this, steps, session_steps](std::size_t begin, std::size_t end,
                                                 std::size_t shard) {
    for (std::size_t i = begin; i < end; ++i) {
      Session& session = *batch_[i];
      // The whole session steps on this shard: no other thread touches
      // any of its state for the duration of the batch.
      for (std::uint64_t s = 0; s < steps; ++s) session.site->step();
      session.steps += steps;
      session_steps->add(steps, shard);
    }
  };
  if (pool_) {
    pool_->parallel_for(batch_.size(), body);
  } else {
    body(0, batch_.size(), 0);
  }
}

bool FleetService::step_session(SessionId id, std::uint64_t steps) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  Session& session = *it->second;
  for (std::uint64_t s = 0; s < steps; ++s) session.site->step();
  session.steps += steps;
  c_session_steps_->add(steps);
  return true;
}

std::vector<SessionId> FleetService::session_ids() const {
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

integration::SecuredWorksite* FleetService::session(SessionId id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->site.get();
}

const integration::SecuredWorksite* FleetService::session(SessionId id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second->site.get();
}

std::uint64_t FleetService::session_steps(SessionId id) const {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? 0 : it->second->steps;
}

std::uint64_t FleetService::total_session_steps() const {
  std::uint64_t total = retired_steps_;
  for (const auto& [id, session] : sessions_) total += session->steps;
  return total;
}

integration::SecurityMetrics FleetService::aggregate_security_metrics() const {
  integration::SecurityMetrics total;
  for (const auto& [id, session] : sessions_) {
    const integration::SecurityMetrics m = session->site->security_metrics();
    total.detection_reports_sent += m.detection_reports_sent;
    total.detection_reports_accepted += m.detection_reports_accepted;
    total.detection_reports_rejected += m.detection_reports_rejected;
    total.spoofed_messages_accepted += m.spoofed_messages_accepted;
    total.estops_from_ids += m.estops_from_ids;
  }
  return total;
}

std::string FleetService::session_deterministic_json(SessionId id) const {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return it->second->site->telemetry().deterministic_json();
}

}  // namespace agrarsec::service
