// Compiler-style diagnostics for the security-architecture analyzer.
// Every finding carries a stable rule id (e.g. "ZC001"), a severity, the
// offending entity ids and a one-line fix hint, so CI output is both
// greppable and machine-consumable (--format=json).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace agrarsec::analysis {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarning = 1,
  kError = 2,  ///< an assessor-rejectable inconsistency; gates CI
};

[[nodiscard]] std::string_view severity_name(Severity severity);

/// One finding. `entities` names the offending model elements with typed
/// prefixes ("zone:control", "threat:estop-replay", "goal:G-top", ...);
/// together with `rule` it forms the stable key the baseline suppresses on,
/// so message rewording never invalidates a committed baseline.
struct Diagnostic {
  std::string rule;                   ///< stable id, e.g. "ZC001"
  Severity severity = Severity::kWarning;
  std::string message;                ///< one-line defect statement
  std::vector<std::string> entities;  ///< offending entity ids
  std::string hint;                   ///< one-line fix hint

  /// Stable suppression key: rule + entity list (not the message).
  [[nodiscard]] std::string key() const;
};

/// Total order used for deterministic output: (rule, entities, message).
[[nodiscard]] bool diagnostic_less(const Diagnostic& a, const Diagnostic& b);

}  // namespace agrarsec::analysis
