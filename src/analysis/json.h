// Minimal deterministic JSON reader/writer for the analyzer's machine
// interfaces (diagnostic reports and baseline files). Objects preserve
// insertion order, so serialization is a pure function of construction
// order — the property the byte-identical --format=json guarantee and the
// baseline round-trip rest on. Parsing accepts standard JSON (no comments,
// no trailing commas); numbers are doubles.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace agrarsec::analysis {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool = 1,
    kNumber = 2,
    kString = 3,
    kArray = 4,
    kObject = 5,
  };

  Json() = default;  ///< null
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is(Kind kind) const { return kind_ == kind; }

  // Scalar access (callers must check kind() first).
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // Array access.
  void push(Json value);
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  // Object access (insertion-ordered; set() replaces an existing key
  // in place to keep ordering stable).
  void set(std::string key, Json value);
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Pretty serialization with `indent` spaces per level (0 = compact).
  [[nodiscard]] std::string serialize(int indent = 2) const;

  /// Strict parse; on failure returns nullopt and (when non-null) fills
  /// `error` with a position-annotated message.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void serialize_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace agrarsec::analysis
