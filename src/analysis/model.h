// The assembled security-architecture model the analyzer walks: IEC 62443
// zones/conduits with their countermeasure catalogue, the ISO/SAE 21434
// TARA, the GSN assurance argument with its evidence registry and
// Regulation (EU) 2023/1230 compliance mapping, and the worksite PKI trust
// relationships. Pure aggregation by const pointer — the analyzer never
// mutates and never simulates; every part is optional (nullptr = absent),
// so a partially assembled model lints with the rules its parts enable.
#pragma once

#include <string>
#include <vector>

#include "assurance/compliance.h"
#include "assurance/evidence.h"
#include "assurance/gsn.h"
#include "core/time.h"
#include "pki/certificate.h"
#include "pki/trust_store.h"
#include "risk/catalog.h"
#include "risk/iec62443.h"
#include "risk/tara.h"

namespace agrarsec::analysis {

/// A named communication endpoint and the certificate chain it presents
/// (leaf first) — what the PK rules validate against the trust store.
struct PkiEndpoint {
  std::string name;
  std::vector<pki::Certificate> chain;
};

struct Model {
  // Zone/conduit layer (IEC 62443).
  const risk::ItemDefinition* item = nullptr;
  const risk::ZoneModel* zones = nullptr;
  const std::vector<risk::Countermeasure>* countermeasures = nullptr;

  // TARA layer (ISO/SAE 21434).
  const risk::Tara* tara = nullptr;
  const std::vector<risk::Control>* controls = nullptr;
  const std::vector<risk::ForestryCharacteristic>* characteristics = nullptr;

  // Assurance layer (GSN argument + compliance mapping).
  const assurance::ArgumentModel* argument = nullptr;
  const assurance::EvidenceRegistry* evidence = nullptr;
  const assurance::ComplianceMap* compliance = nullptr;

  // PKI layer.
  const pki::TrustStore* trust = nullptr;
  const std::vector<PkiEndpoint>* endpoints = nullptr;
  core::SimTime now = 0;  ///< validity instant for chain validation
};

}  // namespace agrarsec::analysis
