// The assembled security-architecture model the analyzer walks: IEC 62443
// zones/conduits with their countermeasure catalogue, the ISO/SAE 21434
// TARA, the GSN assurance argument with its evidence registry and
// Regulation (EU) 2023/1230 compliance mapping, and the worksite PKI trust
// relationships. Pure aggregation by const pointer — the analyzer never
// mutates and never simulates; every part is optional (nullptr = absent),
// so a partially assembled model lints with the rules its parts enable.
#pragma once

#include <string>
#include <vector>

#include "assurance/compliance.h"
#include "assurance/evidence.h"
#include "assurance/gsn.h"
#include "core/time.h"
#include "ids/rule_table.h"
#include "pki/certificate.h"
#include "pki/trust_store.h"
#include "risk/catalog.h"
#include "risk/iec62443.h"
#include "risk/tara.h"

namespace agrarsec::analysis {

/// A named communication endpoint and the certificate chain it presents
/// (leaf first) — what the PK rules validate against the trust store.
struct PkiEndpoint {
  std::string name;
  std::vector<pki::Certificate> chain;
};

/// One executable attack scenario registered in `examples/` or `bench/`,
/// with the TARA threat-catalogue names it exercises end to end. The
/// coverage pass cross-references this registry against the threat
/// catalogue: a treated threat no scenario exercises is a claim without a
/// demonstration (`threat-without-executable-scenario`).
struct ExecutableScenario {
  std::string name;      ///< stable scenario id, e.g. "spoofed-estop"
  std::string location;  ///< source anchor, e.g. "examples/attack_scenarios.cpp"
  std::vector<std::string> threats;  ///< TARA threat names exercised
};

struct Model {
  // Zone/conduit layer (IEC 62443).
  const risk::ItemDefinition* item = nullptr;
  const risk::ZoneModel* zones = nullptr;
  const std::vector<risk::Countermeasure>* countermeasures = nullptr;

  // TARA layer (ISO/SAE 21434).
  const risk::Tara* tara = nullptr;
  const std::vector<risk::Control>* controls = nullptr;
  const std::vector<risk::ForestryCharacteristic>* characteristics = nullptr;

  // Assurance layer (GSN argument + compliance mapping).
  const assurance::ArgumentModel* argument = nullptr;
  const assurance::EvidenceRegistry* evidence = nullptr;
  const assurance::ComplianceMap* compliance = nullptr;

  // PKI layer.
  const pki::TrustStore* trust = nullptr;
  const std::vector<PkiEndpoint>* endpoints = nullptr;
  core::SimTime now = 0;  ///< validity instant for chain validation

  // Coverage layer (IDS rule table + executable scenario registry).
  const std::vector<ids::DetectionRuleInfo>* ids_rules = nullptr;
  const std::vector<ExecutableScenario>* scenarios = nullptr;
};

}  // namespace agrarsec::analysis
