// ZC family: IEC 62443 zone/conduit structure. What an assessor checks
// first on a zone model: conduits must connect declared zones, achieved
// security levels must meet targets, a conduit bridging a trust gradient
// needs its own compensating countermeasures, and every asset in the item
// must live in exactly one trust domain.
#include <string>
#include <unordered_set>

#include "analysis/rules.h"

namespace agrarsec::analysis {

namespace {

const risk::Zone* zone_by_id(const risk::ZoneModel& zones, ZoneId id) {
  for (const risk::Zone& z : zones.zones()) {
    if (z.id == id) return &z;
  }
  return nullptr;
}

void check_sl_gaps(const std::string& subject_entity, const risk::SlVector& target,
                   const risk::SlVector& achieved, std::vector<Diagnostic>& out) {
  for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
    if (achieved[fr] >= target[fr]) continue;
    Diagnostic d;
    d.rule = "ZC002";
    d.severity = Severity::kWarning;
    d.entities = {subject_entity,
                  "fr:" + std::string(risk::fr_name(static_cast<risk::Fr>(fr)))};
    d.message = "achieved SL-A " + std::to_string(achieved[fr]) +
                " below target SL-T " + std::to_string(target[fr]) + " for " +
                std::string(risk::fr_name(static_cast<risk::Fr>(fr)));
    d.hint = "install a countermeasure providing this FR or justify a lower SL-T";
    out.push_back(std::move(d));
  }
}

}  // namespace

void run_zone_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out) {
  if (model.zones == nullptr || model.countermeasures == nullptr) return;
  const risk::ZoneModel& zones = *model.zones;
  const auto& catalogue = *model.countermeasures;

  // ZC001: conduit endpoints must be declared zones.
  for (const risk::Conduit& conduit : zones.conduits()) {
    for (const ZoneId endpoint : {conduit.from, conduit.to}) {
      if (zone_by_id(zones, endpoint) != nullptr) continue;
      Diagnostic d;
      d.rule = "ZC001";
      d.severity = Severity::kError;
      d.entities = {"conduit:" + conduit.name,
                    "zone-id:" + std::to_string(endpoint.value())};
      d.message = "conduit '" + conduit.name +
                  "' endpoint references undeclared zone id " +
                  std::to_string(endpoint.value());
      d.hint = "declare the zone in the model or retarget the conduit";
      out.push_back(std::move(d));
    }
  }

  // ZC002: achieved SL-A below target SL-T, per FR, zones and conduits.
  for (const risk::Zone& zone : zones.zones()) {
    check_sl_gaps("zone:" + zone.name, zone.target, zones.achieved(zone, catalogue),
                  out);
  }
  for (const risk::Conduit& conduit : zones.conduits()) {
    check_sl_gaps("conduit:" + conduit.name, conduit.target,
                  zones.achieved(conduit, catalogue), out);
  }

  // ZC003: a conduit bridging zones whose SL-T differ by >= conduit_gap in
  // some FR is a trust-gradient crossing; it needs a conduit-level
  // countermeasure contributing to that FR (the compensating control an
  // assessor looks for at every gradient crossing).
  for (const risk::Conduit& conduit : zones.conduits()) {
    const risk::Zone* from = zone_by_id(zones, conduit.from);
    const risk::Zone* to = zone_by_id(zones, conduit.to);
    if (from == nullptr || to == nullptr) continue;  // ZC001 already fired
    const risk::SlVector achieved = zones.achieved(conduit, catalogue);
    for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
      const int gap = from->target[fr] > to->target[fr]
                          ? from->target[fr] - to->target[fr]
                          : to->target[fr] - from->target[fr];
      if (gap < config.conduit_gap || achieved[fr] > 0) continue;
      Diagnostic d;
      d.rule = "ZC003";
      d.severity = Severity::kWarning;
      d.entities = {"conduit:" + conduit.name,
                    "fr:" + std::string(risk::fr_name(static_cast<risk::Fr>(fr)))};
      d.message = "conduit '" + conduit.name + "' bridges zones '" + from->name +
                  "' and '" + to->name + "' with SL-T gap " + std::to_string(gap) +
                  " in " + std::string(risk::fr_name(static_cast<risk::Fr>(fr))) +
                  " but carries no compensating countermeasure";
      d.hint = "install a conduit countermeasure providing this FR";
      out.push_back(std::move(d));
    }
  }

  // ZC004: every item asset must be assigned to a zone.
  if (model.item != nullptr) {
    std::unordered_set<std::uint64_t> zoned;
    for (const risk::Zone& zone : zones.zones()) {
      for (const AssetId asset : zone.assets) zoned.insert(asset.value());
    }
    for (const risk::Asset& asset : model.item->assets) {
      if (zoned.contains(asset.id.value())) continue;
      Diagnostic d;
      d.rule = "ZC004";
      d.severity = Severity::kWarning;
      d.entities = {"asset:" + asset.name};
      d.message = "asset '" + asset.name + "' is assigned to no zone";
      d.hint = "add the asset to the zone matching its criticality";
      out.push_back(std::move(d));
    }
  }
}

}  // namespace agrarsec::analysis
