// SA + CM families: cross-model semantic checks (DESIGN.md §15).
//
// SA (attack-path) reasons over the reachability dataflow: the zone/
// conduit graph is analyzed as an attacker-movement graph, and a zone's
// EFFECTIVE resistance (weakest entry path, analysis/reachability.h) is
// compared against the targets the TARA's CAL assignments demand. This is
// what the per-zone gap analysis (ZC002) cannot see: a zone can meet its
// own SL-T locally and still be reachable through a softer neighbour.
//
// CM (consistency) ties the TARA to the GSN argument and the zone model:
// a treatment decision is a CLAIM, and claims need a goal in the security
// case (CM001/CM002); retained risks accumulate per zone and must stay
// under an explicit budget (CM003); a treatment that leaves residual risk
// at the high-risk bar is treatment in name only (CM004).
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/reachability.h"
#include "analysis/rules.h"

namespace agrarsec::analysis {

namespace {

/// FR that guards a security property (IEC 62443-3-3 FR <- 21434 asset
/// property): losing confidentiality is an FR-DC failure, integrity
/// FR-SI, availability FR-RA, authenticity FR-IAC.
risk::Fr fr_for_property(risk::SecurityProperty property) {
  switch (property) {
    case risk::SecurityProperty::kConfidentiality:
      return risk::Fr::kDc;
    case risk::SecurityProperty::kIntegrity:
      return risk::Fr::kSi;
    case risk::SecurityProperty::kAvailability:
      return risk::Fr::kRa;
    case risk::SecurityProperty::kAuthenticity:
      return risk::Fr::kIac;
  }
  return risk::Fr::kSi;
}

/// Highest CAL assessed against each asset (no threats => absent).
std::unordered_map<std::uint64_t, risk::Cal> asset_cal_map(const risk::Tara& tara) {
  std::unordered_map<std::uint64_t, risk::Cal> cal;
  for (const risk::AssessedThreat& result : tara.results()) {
    const std::uint64_t key = result.scenario.asset.value();
    const auto it = cal.find(key);
    if (it == cal.end() || result.cal > it->second) cal[key] = result.cal;
  }
  return cal;
}

/// "CAL3" etc. demands SL-T at least cal+1 on the FRs guarding the
/// asset's properties: CAL1->1 ... CAL4->4 (the 62443 SL ladder the
/// certification argument rides on).
int required_sl(risk::Cal cal) { return static_cast<int>(cal) + 1; }

void run_attack_path_rules(const Model& model, const AnalyzerConfig& config,
                           std::vector<Diagnostic>& out) {
  if (model.zones == nullptr || model.countermeasures == nullptr) return;
  const risk::ZoneModel& zones = *model.zones;
  const std::vector<ZoneReachability> reach =
      compute_reachability(zones, *model.countermeasures);

  std::unordered_map<std::uint64_t, risk::Cal> cal;
  if (model.tara != nullptr) cal = asset_cal_map(*model.tara);
  const risk::ItemDefinition* item =
      model.tara != nullptr ? &model.tara->item() : model.item;

  for (std::size_t i = 0; i < zones.zones().size(); ++i) {
    const risk::Zone& zone = zones.zones()[i];
    const ZoneReachability& r = reach[i];

    // High-CAL assets in this zone, in declaration order.
    std::vector<const risk::Asset*> critical;
    if (item != nullptr) {
      for (const AssetId asset_id : zone.assets) {
        const risk::Asset* asset = item->find(asset_id);
        if (asset == nullptr) continue;
        const auto it = cal.find(asset_id.value());
        if (it == cal.end() || it->second < config.reachability_min_cal) continue;
        critical.push_back(asset);
      }
    }

    for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
      const auto fr_label =
          std::string(risk::fr_name(static_cast<risk::Fr>(fr)));

      // SA001: effective resistance under SL-T with high-CAL assets
      // exposed — the architecture admits an attacker it claims to
      // exclude, and the assets that carry the safety case are in reach.
      if (!critical.empty() &&
          r.effective[fr] < zone.target[fr]) {
        std::string assets;
        for (const risk::Asset* asset : critical) {
          if (!assets.empty()) assets += ", ";
          assets += asset->name;
        }
        Diagnostic d;
        d.rule = "SA001";
        d.severity = Severity::kError;
        d.entities = {"zone:" + zone.name, "fr:" + fr_label};
        d.message = "zone '" + zone.name + "' holds high-CAL assets (" + assets +
                    ") but its effective " + fr_label + " resistance " +
                    std::to_string(r.effective[fr]) + " is below SL-T " +
                    std::to_string(zone.target[fr]);
        d.hint = r.witness[fr].empty()
                     ? "harden the zone's own countermeasures to close the gap"
                     : "harden the entry path: " + witness_to_string(r.witness[fr]);
        out.push_back(std::move(d));
      }

      // SA002: a conduit path strictly undercuts the zone's own
      // defences — local hardening is being bypassed, not defeated.
      if (r.effective[fr] < r.local[fr]) {
        Diagnostic d;
        d.rule = "SA002";
        d.severity = Severity::kWarning;
        d.entities = {"zone:" + zone.name, "fr:" + fr_label};
        d.message = "entry path '" + witness_to_string(r.witness[fr]) +
                    "' reaches zone '" + zone.name + "' at " + fr_label +
                    " resistance " + std::to_string(r.effective[fr]) +
                    ", under its local " + std::to_string(r.local[fr]);
        d.hint = "raise the weakest barrier on the path or cut the conduit";
        out.push_back(std::move(d));
      }
    }

    // SA003: SL-T itself below the floor the assets' CAL demands on the
    // FRs guarding their declared properties — the target was set before
    // the TARA said how attractive the asset is.
    if (item != nullptr) {
      for (const AssetId asset_id : zone.assets) {
        const risk::Asset* asset = item->find(asset_id);
        if (asset == nullptr) continue;
        const auto it = cal.find(asset_id.value());
        if (it == cal.end() || it->second < config.reachability_min_cal) continue;
        const int floor = required_sl(it->second);
        for (const risk::SecurityProperty property : asset->properties) {
          const risk::Fr fr = fr_for_property(property);
          const auto idx = static_cast<std::size_t>(fr);
          if (zone.target[idx] >= floor) continue;
          Diagnostic d;
          d.rule = "SA003";
          d.severity = Severity::kWarning;
          d.entities = {"zone:" + zone.name, "asset:" + asset->name,
                        "fr:" + std::string(risk::fr_name(fr))};
          d.message = "zone '" + zone.name + "' targets " +
                      std::string(risk::fr_name(fr)) + " SL-T " +
                      std::to_string(zone.target[idx]) + " but asset '" +
                      asset->name + "' at " +
                      std::string(risk::cal_name(it->second)) +
                      " demands at least " + std::to_string(floor) + " for its " +
                      std::string(risk::security_property_name(property)) +
                      " property";
          d.hint = "raise the zone SL-T or move the asset to a harder zone";
          out.push_back(std::move(d));
        }
      }
    }
  }

  // SA004: conduit hardened beyond both endpoint targets — spend that
  // buys no assurance (the endpoints gate first) and usually marks a
  // countermeasure attached to the wrong element.
  auto zone_by_id = [&](ZoneId id) -> const risk::Zone* {
    for (const risk::Zone& zone : zones.zones()) {
      if (zone.id == id) return &zone;
    }
    return nullptr;
  };
  for (const risk::Conduit& conduit : zones.conduits()) {
    const risk::Zone* from = zone_by_id(conduit.from);
    const risk::Zone* to = zone_by_id(conduit.to);
    if (from == nullptr || to == nullptr) continue;  // ZC001 reports it
    const risk::SlVector achieved = zones.achieved(conduit, *model.countermeasures);
    for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
      if (achieved[fr] <= from->target[fr] || achieved[fr] <= to->target[fr]) {
        continue;
      }
      Diagnostic d;
      d.rule = "SA004";
      d.severity = Severity::kInfo;
      d.entities = {"conduit:" + conduit.name,
                    "fr:" + std::string(risk::fr_name(static_cast<risk::Fr>(fr)))};
      d.message = "conduit '" + conduit.name + "' achieves " +
                  std::string(risk::fr_name(static_cast<risk::Fr>(fr))) + " " +
                  std::to_string(achieved[fr]) +
                  ", above both endpoint zone targets (" +
                  std::to_string(from->target[fr]) + ", " +
                  std::to_string(to->target[fr]) + ")";
      d.hint = "re-balance: the endpoint zones gate before the conduit does";
      out.push_back(std::move(d));
    }
  }
}

/// True if the goal's argument neighbourhood mentions `asset_name`: the
/// goal itself, any attached context, or any ancestor reached walking
/// supported_by edges upward (with their contexts). Mirrors how
/// build_security_case() nests "G-threat-*" under "G-asset-*".
bool argument_names_asset(const assurance::ArgumentModel& argument,
                          const assurance::GsnNode& goal,
                          const std::string& asset_name) {
  // Reverse supported_by adjacency: child id -> parents.
  std::unordered_map<std::uint64_t, std::vector<const assurance::GsnNode*>> parents;
  for (const assurance::GsnNode& node : argument.nodes()) {
    for (const GsnId child : node.supported_by) {
      parents[child.value()].push_back(&node);
    }
  }

  auto mentions = [&](const assurance::GsnNode& node) {
    if (node.label.find(asset_name) != std::string::npos) return true;
    if (node.statement.find(asset_name) != std::string::npos) return true;
    for (const GsnId ctx : node.in_context_of) {
      const assurance::GsnNode* context = argument.node(ctx);
      if (context == nullptr) continue;
      if (context->label.find(asset_name) != std::string::npos) return true;
      if (context->statement.find(asset_name) != std::string::npos) return true;
    }
    return false;
  };

  std::unordered_set<std::uint64_t> seen;
  std::vector<const assurance::GsnNode*> stack = {&goal};
  while (!stack.empty()) {
    const assurance::GsnNode* at = stack.back();
    stack.pop_back();
    if (!seen.insert(at->id.value()).second) continue;
    if (mentions(*at)) return true;
    const auto it = parents.find(at->id.value());
    if (it == parents.end()) continue;
    for (const assurance::GsnNode* parent : it->second) stack.push_back(parent);
  }
  return false;
}

void run_consistency_rules(const Model& model, const AnalyzerConfig& config,
                           std::vector<Diagnostic>& out) {
  if (model.tara == nullptr) return;
  const risk::Tara& tara = *model.tara;

  for (const risk::AssessedThreat& result : tara.results()) {
    const bool claimed = result.treatment == risk::Treatment::kAvoid ||
                         result.treatment == risk::Treatment::kReduce;
    const std::string goal_label = "G-threat-" + result.scenario.name;

    if (claimed && model.argument != nullptr) {
      const assurance::GsnNode* goal = model.argument->by_label(goal_label);
      if (goal == nullptr) {
        // CM001: the TARA says the risk is treated; the security case
        // never argues it. An assessor reads that as an unsupported claim.
        Diagnostic d;
        d.rule = "CM001";
        d.severity = Severity::kError;
        d.entities = {"threat:" + result.scenario.name, "goal:" + goal_label};
        d.message = "threat '" + result.scenario.name + "' is treated (" +
                    std::string(risk::treatment_name(result.treatment)) +
                    ") but the argument has no goal '" + goal_label + "'";
        d.hint = "add the mitigation goal to the security case";
        out.push_back(std::move(d));
      } else {
        // CM002: the goal exists but its argument neighbourhood never
        // names the treated asset — the claim is not anchored to what it
        // protects.
        const risk::Asset* asset = tara.item().find(result.scenario.asset);
        if (asset != nullptr &&
            !argument_names_asset(*model.argument, *goal, asset->name)) {
          Diagnostic d;
          d.rule = "CM002";
          d.severity = Severity::kWarning;
          d.entities = {"threat:" + result.scenario.name, "goal:" + goal_label,
                        "asset:" + asset->name};
          d.message = "goal '" + goal_label +
                      "' claims treatment of a threat against '" + asset->name +
                      "' but neither the goal, its contexts nor its ancestors "
                      "name that asset";
          d.hint = "attach a context naming the asset or re-parent the goal";
          out.push_back(std::move(d));
        }
      }
    }

    // CM004: treatment applied, residual risk still at the high-risk
    // bar — controls were selected but did not move the needle.
    if (claimed && result.residual_risk >= config.high_risk) {
      Diagnostic d;
      d.rule = "CM004";
      d.severity = Severity::kWarning;
      d.entities = {"threat:" + result.scenario.name};
      d.message = "threat '" + result.scenario.name + "' is treated (" +
                  std::string(risk::treatment_name(result.treatment)) +
                  ") but residual risk " + std::to_string(result.residual_risk) +
                  " still meets the high-risk bar " +
                  std::to_string(config.high_risk);
      d.hint = "add controls, redesign, or escalate to an avoid decision";
      out.push_back(std::move(d));
    }
  }

  // CM003: retained residual risk summed per zone against the budget.
  // Retention is a legitimate decision per threat; a zone quietly
  // accumulating many of them is a decision nobody made.
  if (model.zones != nullptr) {
    for (const risk::Zone& zone : model.zones->zones()) {
      std::unordered_set<std::uint64_t> zone_assets;
      for (const AssetId asset : zone.assets) zone_assets.insert(asset.value());

      risk::RiskValue retained = 0;
      std::vector<std::string> contributors;
      for (const risk::AssessedThreat& result : tara.results()) {
        if (result.treatment != risk::Treatment::kRetain) continue;
        if (!zone_assets.contains(result.scenario.asset.value())) continue;
        retained += result.residual_risk;
        contributors.push_back(result.scenario.name);
      }
      if (retained <= config.zone_residual_budget) continue;

      std::string list;
      for (const std::string& name : contributors) {
        if (!list.empty()) list += ", ";
        list += name;
      }
      Diagnostic d;
      d.rule = "CM003";
      d.severity = Severity::kError;
      d.entities = {"zone:" + zone.name};
      d.message = "zone '" + zone.name + "' retains residual risk " +
                  std::to_string(retained) + " (budget " +
                  std::to_string(config.zone_residual_budget) + ") from: " + list;
      d.hint = "treat some retained threats or raise the documented budget";
      out.push_back(std::move(d));
    }
  }
}

}  // namespace

void run_semantic_rules(const Model& model, const AnalyzerConfig& config,
                        std::vector<Diagnostic>& out) {
  run_attack_path_rules(model, config, out);
  run_consistency_rules(model, config, out);
}

}  // namespace agrarsec::analysis
