// PK family: PKI trust relationships. Every endpoint the architecture
// declares must present a certificate chain that validates against the
// site trust store at the analysis instant — signature chain, CA bits,
// validity windows, revocation, role constraints (TrustStore::validate).
#include <string>

#include "analysis/rules.h"

namespace agrarsec::analysis {

void run_pki_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out) {
  (void)config;
  if (model.trust == nullptr || model.endpoints == nullptr) return;

  for (const PkiEndpoint& endpoint : *model.endpoints) {
    const auto validated = model.trust->validate(endpoint.chain, model.now);
    if (validated.ok()) continue;
    Diagnostic d;
    d.rule = "PK001";
    d.severity = Severity::kError;
    d.entities = {"endpoint:" + endpoint.name};
    d.message = "endpoint '" + endpoint.name +
                "' certificate chain does not validate against the trust store (" +
                validated.error().to_string() + ")";
    d.hint = "re-enroll the endpoint under an installed root or fix the chain";
    out.push_back(std::move(d));
  }
}

}  // namespace agrarsec::analysis
