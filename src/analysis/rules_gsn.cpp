// GS family: GSN argument structure and compliance-mapping integrity. An
// assurance case with a support cycle, an evidence reference into the
// void, or an open goal nobody flagged is exactly what AdvoCATE-style
// tooling exists to reject before an assessor does.
#include <string>
#include <unordered_map>

#include "analysis/rules.h"

namespace agrarsec::analysis {

namespace {

/// DFS colors for cycle detection over supported_by + in_context_of.
enum class Color : std::uint8_t { kWhite, kGray, kBlack };

/// Reports the back edge closing each cycle (one diagnostic per back
/// edge). Iterative stack so a pathological chain cannot overflow.
void find_cycles(const assurance::ArgumentModel& argument,
                 std::vector<Diagnostic>& out) {
  const auto& nodes = argument.nodes();
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (std::size_t i = 0; i < nodes.size(); ++i) index[nodes[i].id.value()] = i;

  std::vector<Color> color(nodes.size(), Color::kWhite);
  auto edges = [&](const assurance::GsnNode& n) {
    std::vector<GsnId> all = n.supported_by;
    all.insert(all.end(), n.in_context_of.begin(), n.in_context_of.end());
    return all;
  };

  for (std::size_t root = 0; root < nodes.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (node index, next child position).
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(root, 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [at, next] = stack.back();
      const std::vector<GsnId> children = edges(nodes[at]);
      if (next >= children.size()) {
        color[at] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const auto it = index.find(children[next].value());
      ++next;
      if (it == index.end()) continue;  // dangling edge; GS rules elsewhere
      const std::size_t to = it->second;
      if (color[to] == Color::kGray) {
        Diagnostic d;
        d.rule = "GS001";
        d.severity = Severity::kError;
        d.entities = {"node:" + nodes[at].label, "node:" + nodes[to].label};
        d.message = "argument cycle: edge from '" + nodes[at].label + "' back to '" +
                    nodes[to].label + "' closes a support/context loop";
        d.hint = "break the loop; GSN arguments must be acyclic";
        out.push_back(std::move(d));
      } else if (color[to] == Color::kWhite) {
        color[to] = Color::kGray;
        stack.emplace_back(to, 0);
      }
    }
  }
}

}  // namespace

void run_gsn_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out) {
  (void)config;
  if (model.argument == nullptr) return;
  const assurance::ArgumentModel& argument = *model.argument;

  // GS001: cycles through supported_by / in_context_of.
  find_cycles(argument, out);

  for (const assurance::GsnNode& node : argument.nodes()) {
    // GS002: solutions must reference resolvable evidence.
    if (node.type == assurance::GsnType::kSolution) {
      if (!node.evidence.has_value()) {
        Diagnostic d;
        d.rule = "GS002";
        d.severity = Severity::kError;
        d.entities = {"node:" + node.label};
        d.message = "solution '" + node.label + "' has no bound evidence";
        d.hint = "bind an evidence item or replace the solution with a goal";
        out.push_back(std::move(d));
      } else if (model.evidence != nullptr &&
                 model.evidence->item(*node.evidence) == nullptr) {
        Diagnostic d;
        d.rule = "GS002";
        d.severity = Severity::kError;
        d.entities = {"node:" + node.label,
                      "evidence-id:" + std::to_string(node.evidence->value())};
        d.message = "solution '" + node.label + "' references dangling evidence id " +
                    std::to_string(node.evidence->value());
        d.hint = "register the evidence item or rebind the solution";
        out.push_back(std::move(d));
      }
    }

    // GS003: goals are either developed or explicitly marked undeveloped.
    if (node.type == assurance::GsnType::kGoal && !node.undeveloped &&
        node.supported_by.empty()) {
      Diagnostic d;
      d.rule = "GS003";
      d.severity = Severity::kWarning;
      d.entities = {"node:" + node.label};
      d.message = "goal '" + node.label +
                  "' is neither developed nor marked undeveloped";
      d.hint = "support the goal or mark_undeveloped() to record the open point";
      out.push_back(std::move(d));
    }
  }

  // GS004: every compliance mapping must land on an existing goal label.
  if (model.compliance != nullptr) {
    // Walk requirements in declaration order (deterministic), looking up
    // each mapping — never iterate the unordered mapping itself.
    for (const assurance::Requirement& requirement :
         model.compliance->requirements()) {
      const auto it = model.compliance->mapping().find(requirement.id);
      if (it == model.compliance->mapping().end()) continue;
      for (const std::string& label : it->second) {
        if (argument.by_label(label) != nullptr) continue;
        Diagnostic d;
        d.rule = "GS004";
        d.severity = Severity::kError;
        d.entities = {"requirement:" + requirement.id, "goal:" + label};
        d.message = "requirement '" + requirement.id +
                    "' is mapped to nonexistent goal '" + label + "'";
        d.hint = "fix the goal label or add the goal to the argument";
        out.push_back(std::move(d));
      }
    }
  }
}

}  // namespace agrarsec::analysis
