// TARA -> IDS -> scenario coverage matrix (DESIGN.md §15.3). Three
// artefacts claim to handle each threat: the TARA (risk treatment), the
// IDS rule table (runtime detection, ids/rule_table.h), and the
// executable attack scenarios in examples//bench/ (demonstration). The
// coverage pass joins them on threat-catalogue names and reports the
// holes: a treated threat nothing detects, a treated threat nothing
// demonstrates, a detection rule watching for threats the TARA no longer
// lists, a scenario exercising nothing catalogued.
#pragma once

#include <string>
#include <vector>

#include "analysis/model.h"

namespace agrarsec::analysis {

/// The built-in scenario registry: every executable attack scenario this
/// repository ships (examples/, bench/, tools/) with the threat names it
/// exercises. Sorted by scenario name; kept in sync with the sources by
/// tests/analysis/coverage_test.cpp.
[[nodiscard]] const std::vector<ExecutableScenario>& scenario_registry();

/// Join result for one assessed threat.
struct ThreatCoverage {
  std::string threat;
  std::string treatment;                ///< treatment_name() of the decision
  std::string cal;                      ///< cal_name() of the assigned CAL
  std::vector<std::string> detections;  ///< IDS rule ids mapped to it
  std::vector<std::string> scenarios;   ///< scenario names exercising it
};

/// The full matrix plus the reverse-direction leftovers.
struct CoverageMatrix {
  std::vector<ThreatCoverage> threats;      ///< sorted by threat name
  std::vector<std::string> dead_rules;      ///< IDS rules mapping no live threat
  std::vector<std::string> orphan_scenarios;  ///< scenarios exercising none
};

/// Builds the matrix from the model's TARA, IDS rule table and scenario
/// registry (absent layers contribute empty columns). Deterministic.
[[nodiscard]] CoverageMatrix build_coverage(const Model& model);

/// Machine-readable report for --coverage-json:
/// {"version":1,"threats":[...],"rules":[...],"scenarios":[...],"summary":{...}}.
[[nodiscard]] std::string render_coverage_json(const CoverageMatrix& matrix,
                                               const Model& model);

}  // namespace agrarsec::analysis
