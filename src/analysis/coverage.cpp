#include "analysis/coverage.h"

#include <algorithm>
#include <unordered_set>

#include "analysis/json.h"
#include "analysis/rules.h"

namespace agrarsec::analysis {

const std::vector<ExecutableScenario>& scenario_registry() {
  static const std::vector<ExecutableScenario> kScenarios = {
      {"attack-to-hazard-cover-forgery", "bench/bench_attack_to_hazard.cpp",
       {"detection-suppression", "disaster-window-attack"}},
      {"attack-to-hazard-stale-replay", "bench/bench_attack_to_hazard.cpp",
       {"detection-suppression", "estop-replay"}},
      {"channel-flood-vs-ids", "examples/attack_scenarios.cpp",
       {"detection-suppression"}},
      {"console-control-plane-attack", "examples/fleet_console.cpp",
       {"console-command-flood", "console-handshake-bruteforce",
        "console-replay-burst"}},
      {"ghost-lidar", "examples/attack_scenarios.cpp", {"lidar-ghosting"}},
      {"gnss-corridor-walkoff", "bench/bench_gnss_corridor.cpp",
       {"gnss-spoof-walkoff"}},
      {"ids-roc-telemetry-spoof", "bench/bench_ids_roc.cpp",
       {"telemetry-spoof"}},
      {"jam-safety-link", "examples/attack_scenarios.cpp",
       {"estop-suppression"}},
      {"replayed-detections", "examples/attack_scenarios.cpp",
       {"detection-suppression", "estop-replay"}},
      {"session-export-attack-variant", "tools/session_export.cpp",
       {"estop-replay", "rogue-node-join"}},
      {"spoofed-estop", "examples/attack_scenarios.cpp",
       {"forged-mission", "rogue-node-join"}},
  };
  return kScenarios;
}

CoverageMatrix build_coverage(const Model& model) {
  CoverageMatrix matrix;
  if (model.tara == nullptr) return matrix;

  std::unordered_set<std::string> catalogued;
  for (const risk::AssessedThreat& result : model.tara->results()) {
    catalogued.insert(result.scenario.name);
    ThreatCoverage row;
    row.threat = result.scenario.name;
    row.treatment = std::string(risk::treatment_name(result.treatment));
    row.cal = std::string(risk::cal_name(result.cal));
    if (model.ids_rules != nullptr) {
      for (const ids::DetectionRuleInfo& rule : *model.ids_rules) {
        if (std::find(rule.threats.begin(), rule.threats.end(),
                      result.scenario.name) != rule.threats.end()) {
          row.detections.push_back(rule.id);
        }
      }
    }
    if (model.scenarios != nullptr) {
      for (const ExecutableScenario& scenario : *model.scenarios) {
        if (std::find(scenario.threats.begin(), scenario.threats.end(),
                      result.scenario.name) != scenario.threats.end()) {
          row.scenarios.push_back(scenario.name);
        }
      }
    }
    matrix.threats.push_back(std::move(row));
  }
  std::sort(matrix.threats.begin(), matrix.threats.end(),
            [](const ThreatCoverage& a, const ThreatCoverage& b) {
              return a.threat < b.threat;
            });

  if (model.ids_rules != nullptr) {
    for (const ids::DetectionRuleInfo& rule : *model.ids_rules) {
      const bool live = std::any_of(
          rule.threats.begin(), rule.threats.end(),
          [&](const std::string& threat) { return catalogued.contains(threat); });
      if (!live) matrix.dead_rules.push_back(rule.id);
    }
  }
  if (model.scenarios != nullptr) {
    for (const ExecutableScenario& scenario : *model.scenarios) {
      const bool live = std::any_of(
          scenario.threats.begin(), scenario.threats.end(),
          [&](const std::string& threat) { return catalogued.contains(threat); });
      if (!live) matrix.orphan_scenarios.push_back(scenario.name);
    }
  }
  return matrix;
}

std::string render_coverage_json(const CoverageMatrix& matrix, const Model& model) {
  Json threats = Json::array();
  std::size_t detected = 0;
  std::size_t exercised = 0;
  for (const ThreatCoverage& row : matrix.threats) {
    if (!row.detections.empty()) ++detected;
    if (!row.scenarios.empty()) ++exercised;
    Json entry = Json::object();
    entry.set("name", Json::string(row.threat));
    entry.set("treatment", Json::string(row.treatment));
    entry.set("cal", Json::string(row.cal));
    Json detections = Json::array();
    for (const std::string& id : row.detections) detections.push(Json::string(id));
    entry.set("detections", std::move(detections));
    Json scenarios = Json::array();
    for (const std::string& name : row.scenarios) scenarios.push(Json::string(name));
    entry.set("scenarios", std::move(scenarios));
    threats.push(std::move(entry));
  }

  Json rules = Json::array();
  if (model.ids_rules != nullptr) {
    std::unordered_set<std::string> dead(matrix.dead_rules.begin(),
                                         matrix.dead_rules.end());
    for (const ids::DetectionRuleInfo& rule : *model.ids_rules) {
      Json entry = Json::object();
      entry.set("id", Json::string(rule.id));
      entry.set("kind", Json::string(rule.kind));
      Json mapped = Json::array();
      for (const std::string& threat : rule.threats) mapped.push(Json::string(threat));
      entry.set("threats", std::move(mapped));
      entry.set("live", Json::boolean(!dead.contains(rule.id)));
      rules.push(std::move(entry));
    }
  }

  Json scenarios = Json::array();
  if (model.scenarios != nullptr) {
    for (const ExecutableScenario& scenario : *model.scenarios) {
      Json entry = Json::object();
      entry.set("name", Json::string(scenario.name));
      entry.set("location", Json::string(scenario.location));
      Json mapped = Json::array();
      for (const std::string& threat : scenario.threats) {
        mapped.push(Json::string(threat));
      }
      entry.set("threats", std::move(mapped));
      scenarios.push(std::move(entry));
    }
  }

  Json summary = Json::object();
  summary.set("threats", Json::number(static_cast<double>(matrix.threats.size())));
  summary.set("detected", Json::number(static_cast<double>(detected)));
  summary.set("exercised", Json::number(static_cast<double>(exercised)));
  summary.set("dead_rules",
              Json::number(static_cast<double>(matrix.dead_rules.size())));
  summary.set("orphan_scenarios",
              Json::number(static_cast<double>(matrix.orphan_scenarios.size())));

  Json report = Json::object();
  report.set("version", Json::number(1));
  report.set("threats", std::move(threats));
  report.set("rules", std::move(rules));
  report.set("scenarios", std::move(scenarios));
  report.set("summary", std::move(summary));
  return report.serialize(2) + "\n";
}

void run_coverage_rules(const Model& model, const AnalyzerConfig& config,
                        std::vector<Diagnostic>& out) {
  (void)config;
  if (model.tara == nullptr) return;
  const CoverageMatrix matrix = build_coverage(model);

  std::unordered_set<std::string> treated;
  for (const risk::AssessedThreat& result : model.tara->results()) {
    if (result.treatment == risk::Treatment::kAvoid ||
        result.treatment == risk::Treatment::kReduce) {
      treated.insert(result.scenario.name);
    }
  }

  for (const ThreatCoverage& row : matrix.threats) {
    if (!treated.contains(row.threat)) continue;

    // CV001: the TARA claims the threat is treated; at runtime nothing
    // watches for it. Treatment without detection means a control failure
    // is silent — the residual risk argument has no runtime evidence.
    if (model.ids_rules != nullptr && row.detections.empty()) {
      Diagnostic d;
      d.rule = "CV001";
      d.severity = Severity::kWarning;
      d.entities = {"threat:" + row.threat};
      d.message = "treated threat '" + row.threat +
                  "' has no IDS detection rule mapped to it";
      d.hint = "map an IDS rule in ids/rule_table.cpp or justify blindness";
      out.push_back(std::move(d));
    }

    // CV002: the treatment claim is never demonstrated end to end — no
    // executable scenario drives the attack against the defended stack.
    if (model.scenarios != nullptr && row.scenarios.empty()) {
      Diagnostic d;
      d.rule = "CV002";
      d.severity = Severity::kWarning;
      d.entities = {"threat:" + row.threat};
      d.message = "treated threat '" + row.threat +
                  "' has no executable attack scenario exercising it";
      d.hint = "add a scenario to examples//bench/ and register it";
      out.push_back(std::move(d));
    }
  }

  // CV003: a detection rule whose mapped threats all vanished from the
  // TARA — dead monitoring weight, or a threat catalogue edit that
  // orphaned its runtime counterpart.
  for (const std::string& rule_id : matrix.dead_rules) {
    Diagnostic d;
    d.rule = "CV003";
    d.severity = Severity::kInfo;
    d.entities = {"ids-rule:" + rule_id};
    d.message = "IDS rule '" + rule_id +
                "' maps only to threats absent from the TARA";
    d.hint = "retire the rule or re-map it to catalogued threats";
    out.push_back(std::move(d));
  }

  // CV004: a registered scenario exercising nothing catalogued — the
  // demonstration lost its claim.
  for (const std::string& scenario : matrix.orphan_scenarios) {
    Diagnostic d;
    d.rule = "CV004";
    d.severity = Severity::kInfo;
    d.entities = {"scenario:" + scenario};
    d.message = "scenario '" + scenario +
                "' exercises no threat in the TARA catalogue";
    d.hint = "tag the scenario with catalogue threat names or remove it";
    out.push_back(std::move(d));
  }
}

}  // namespace agrarsec::analysis
