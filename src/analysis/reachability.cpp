#include "analysis/reachability.h"

#include <algorithm>
#include <cstddef>

namespace agrarsec::analysis {

namespace {

/// Predecessor on the current best entry path into a zone, per FR.
struct Pred {
  std::size_t from_zone = 0;
  std::size_t via_conduit = 0;
  bool set = false;  ///< false = direct entry is the best path
};

}  // namespace

std::vector<ZoneReachability> compute_reachability(
    const risk::ZoneModel& zones,
    const std::vector<risk::Countermeasure>& catalogue) {
  const auto& zone_list = zones.zones();
  const auto& conduit_list = zones.conduits();
  const std::size_t n = zone_list.size();

  std::vector<ZoneReachability> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].zone = zone_list[i].id;
    out[i].zone_name = zone_list[i].name;
    out[i].local = zones.achieved(zone_list[i], catalogue);
    out[i].effective = out[i].local;  // direct entry is always available
  }

  auto zone_index = [&](ZoneId id) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < n; ++i) {
      if (zone_list[i].id == id) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };

  // Resolve conduit endpoints and barriers once.
  struct Edge {
    std::size_t u = 0;
    std::size_t v = 0;
    std::size_t conduit = 0;
    risk::SlVector achieved{};
  };
  std::vector<Edge> edges;
  for (std::size_t c = 0; c < conduit_list.size(); ++c) {
    const std::ptrdiff_t u = zone_index(conduit_list[c].from);
    const std::ptrdiff_t v = zone_index(conduit_list[c].to);
    if (u < 0 || v < 0) continue;  // dangling endpoint: ZC001 reports it
    Edge e;
    e.u = static_cast<std::size_t>(u);
    e.v = static_cast<std::size_t>(v);
    e.conduit = c;
    e.achieved = zones.achieved(conduit_list[c], catalogue);
    edges.push_back(e);
  }

  // Minimax fixpoint: relax every edge in both directions until no FR
  // improves. Each relaxation only lowers an effective level, and levels
  // are bounded below by 0, so n sweeps always suffice.
  std::vector<std::array<Pred, risk::kFrCount>> pred(n);
  bool changed = true;
  for (std::size_t sweep = 0; changed && sweep <= n; ++sweep) {
    changed = false;
    for (const Edge& e : edges) {
      for (const auto [src, dst] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
        for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
          // Trusted-channel pivot: only the conduit gates this hop — the
          // destination's perimeter does not re-gate authorized conduits.
          const int candidate =
              std::max(out[src].effective[fr], e.achieved[fr]);
          if (candidate >= out[dst].effective[fr]) continue;
          out[dst].effective[fr] = candidate;
          pred[dst][fr] = {src, e.conduit, true};
          changed = true;
        }
      }
    }
  }

  // Reconstruct the witness path for every undercut (effective < local).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t fr = 0; fr < risk::kFrCount; ++fr) {
      if (out[i].effective[fr] >= out[i].local[fr]) continue;
      std::vector<std::string> hops;  // built back-to-front
      std::size_t at = i;
      for (std::size_t guard = 0; pred[at][fr].set && guard < n; ++guard) {
        hops.push_back(conduit_list[pred[at][fr].via_conduit].name);
        at = pred[at][fr].from_zone;
        hops.push_back(zone_list[at].name);
      }
      std::reverse(hops.begin(), hops.end());
      out[i].witness[fr] = std::move(hops);
    }
  }
  return out;
}

std::string witness_to_string(const std::vector<std::string>& hops) {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i != 0) out += " -> ";
    out += hops[i];
  }
  return out;
}

}  // namespace agrarsec::analysis
