#include "analysis/analyzer.h"

#include <algorithm>
#include <chrono>

#include "analysis/json.h"

namespace agrarsec::analysis {

std::vector<Diagnostic> Analyzer::analyze(const Model& model) const {
  return analyze(model, nullptr);
}

std::vector<Diagnostic> Analyzer::analyze(const Model& model,
                                          std::vector<PassStats>* stats) const {
  using RunFn = void (*)(const Model&, const AnalyzerConfig&,
                         std::vector<Diagnostic>&);
  struct Pass {
    const char* name;
    RunFn run;
  };
  static constexpr Pass kPasses[] = {
      {"zone-conduit", run_zone_rules}, {"tara", run_tara_rules},
      {"gsn", run_gsn_rules},           {"pki", run_pki_rules},
      {"semantic", run_semantic_rules}, {"coverage", run_coverage_rules},
  };

  std::vector<Diagnostic> out;
  for (const Pass& pass : kPasses) {
    const std::size_t before = out.size();
    if (stats == nullptr) {
      pass.run(model, config_, out);
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    pass.run(model, config_, out);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    PassStats entry;
    entry.pass = pass.name;
    entry.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    entry.findings = out.size() - before;
    stats->push_back(std::move(entry));
  }

  std::sort(out.begin(), out.end(), diagnostic_less);
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return !diagnostic_less(a, b) && !diagnostic_less(b, a);
                        }),
            out.end());
  return out;
}

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

std::string render_text(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += std::string(severity_name(d.severity));
    out += '[';
    out += d.rule;
    out += "]: ";
    out += d.message;
    out += '\n';
    if (!d.entities.empty()) {
      out += "  at: ";
      for (std::size_t i = 0; i < d.entities.size(); ++i) {
        if (i != 0) out += ", ";
        out += d.entities[i];
      }
      out += '\n';
    }
    if (!d.hint.empty()) {
      out += "  hint: " + d.hint + '\n';
    }
  }
  out += std::to_string(diagnostics.size()) + " finding(s): " +
         std::to_string(count_severity(diagnostics, Severity::kError)) + " error, " +
         std::to_string(count_severity(diagnostics, Severity::kWarning)) +
         " warning, " + std::to_string(count_severity(diagnostics, Severity::kInfo)) +
         " info\n";
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
  Json findings = Json::array();
  for (const Diagnostic& d : diagnostics) {
    Json finding = Json::object();
    finding.set("rule", Json::string(d.rule));
    finding.set("severity", Json::string(std::string(severity_name(d.severity))));
    finding.set("message", Json::string(d.message));
    Json entities = Json::array();
    for (const std::string& entity : d.entities) {
      entities.push(Json::string(entity));
    }
    finding.set("entities", std::move(entities));
    finding.set("hint", Json::string(d.hint));
    findings.push(std::move(finding));
  }

  Json summary = Json::object();
  summary.set("errors",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kError))));
  summary.set("warnings",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kWarning))));
  summary.set("infos",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kInfo))));

  Json report = Json::object();
  report.set("version", Json::number(1));
  report.set("findings", std::move(findings));
  report.set("summary", std::move(summary));
  return report.serialize(2) + "\n";
}

}  // namespace agrarsec::analysis
