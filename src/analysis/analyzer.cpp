#include "analysis/analyzer.h"

#include <algorithm>

#include "analysis/json.h"

namespace agrarsec::analysis {

std::vector<Diagnostic> Analyzer::analyze(const Model& model) const {
  std::vector<Diagnostic> out;
  run_zone_rules(model, config_, out);
  run_tara_rules(model, config_, out);
  run_gsn_rules(model, config_, out);
  run_pki_rules(model, config_, out);

  std::sort(out.begin(), out.end(), diagnostic_less);
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return !diagnostic_less(a, b) && !diagnostic_less(b, a);
                        }),
            out.end());
  return out;
}

std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                           Severity severity) {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

std::string render_text(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += std::string(severity_name(d.severity));
    out += '[';
    out += d.rule;
    out += "]: ";
    out += d.message;
    out += '\n';
    if (!d.entities.empty()) {
      out += "  at: ";
      for (std::size_t i = 0; i < d.entities.size(); ++i) {
        if (i != 0) out += ", ";
        out += d.entities[i];
      }
      out += '\n';
    }
    if (!d.hint.empty()) {
      out += "  hint: " + d.hint + '\n';
    }
  }
  out += std::to_string(diagnostics.size()) + " finding(s): " +
         std::to_string(count_severity(diagnostics, Severity::kError)) + " error, " +
         std::to_string(count_severity(diagnostics, Severity::kWarning)) +
         " warning, " + std::to_string(count_severity(diagnostics, Severity::kInfo)) +
         " info\n";
  return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
  Json findings = Json::array();
  for (const Diagnostic& d : diagnostics) {
    Json finding = Json::object();
    finding.set("rule", Json::string(d.rule));
    finding.set("severity", Json::string(std::string(severity_name(d.severity))));
    finding.set("message", Json::string(d.message));
    Json entities = Json::array();
    for (const std::string& entity : d.entities) {
      entities.push(Json::string(entity));
    }
    finding.set("entities", std::move(entities));
    finding.set("hint", Json::string(d.hint));
    findings.push(std::move(finding));
  }

  Json summary = Json::object();
  summary.set("errors",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kError))));
  summary.set("warnings",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kWarning))));
  summary.set("infos",
              Json::number(static_cast<double>(count_severity(diagnostics, Severity::kInfo))));

  Json report = Json::object();
  report.set("version", Json::number(1));
  report.set("findings", std::move(findings));
  report.set("summary", std::move(summary));
  return report.serialize(2) + "\n";
}

}  // namespace agrarsec::analysis
