#include "analysis/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace agrarsec::analysis {

Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = value;
  return j;
}

Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::push(Json value) { items_.push_back(std::move(value)); }

void Json::set(std::string key, Json value) {
  for (auto& [existing, held] : members_) {
    if (existing == key) {
      held = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [existing, held] : members_) {
    if (existing == key) return &held;
  }
  return nullptr;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Integral values print without a decimal point (baseline versions,
  // counts); everything else uses shortest round-trip-ish %.17g.
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void Json::serialize_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: append_number(out, number_); return;
    case Kind::kString: append_escaped(out, string_); return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        append_indent(out, indent, depth + 1);
        items_[i].serialize_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        append_indent(out, indent, depth + 1);
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.serialize_to(out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::serialize(int indent) const {
  std::string out;
  serialize_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    auto value = parse_value();
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after value");
        value.reset();
      }
    }
    if (!value && error != nullptr) {
      *error = error_ + " at offset " + std::to_string(pos_);
    }
    return value;
  }

 private:
  void fail(std::string message) {
    if (error_.empty()) error_ = std::move(message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string_body() {
    // pos_ is just past the opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      ++pos_;
      auto body = parse_string_body();
      if (!body) return std::nullopt;
      return Json::string(std::move(*body));
    }
    if (literal("true")) return Json::boolean(true);
    if (literal("false")) return Json::boolean(false);
    if (literal("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) {
      fail("malformed number");
      return std::nullopt;
    }
    return Json::number(value);
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.push(std::move(*value));
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      if (!consume('"')) {
        fail("expected object key");
        return std::nullopt;
      }
      auto key = parse_string_body();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after key");
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.set(std::move(*key), std::move(*value));
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace agrarsec::analysis
