// The analyzer: runs the full rule pack over an assembled model and
// renders the findings. Pure graph reasoning over existing model types —
// no simulation, no randomness, no wall clock — so the diagnostic list
// (and its JSON rendering) is byte-identical across runs on the same
// model, which is what lets CI diff it against a baseline.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model.h"
#include "analysis/rules.h"

namespace agrarsec::analysis {

class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {}) : config_(config) {}

  /// Runs every rule family; the result is sorted by (rule, entities,
  /// message) and deduplicated — a pure function of the model.
  [[nodiscard]] std::vector<Diagnostic> analyze(const Model& model) const;

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
};

/// Number of diagnostics at exactly `severity`.
[[nodiscard]] std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                                         Severity severity);

/// Human-readable report, one "severity[rule]: message" block per finding.
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diagnostics);

/// Deterministic JSON report: {"version":1,"findings":[...],"summary":{...}}.
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diagnostics);

}  // namespace agrarsec::analysis
