// The analyzer: runs the full rule pack over an assembled model and
// renders the findings. Pure graph reasoning over existing model types —
// no simulation, no randomness, no wall clock — so the diagnostic list
// (and its JSON rendering) is byte-identical across runs on the same
// model, which is what lets CI diff it against a baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model.h"
#include "analysis/rules.h"

namespace agrarsec::analysis {

/// Wall time and yield of one analyzer pass (--stats). Timing is a
/// side-channel for the operator: it never enters the diagnostics, so the
/// report stays a pure function of the model.
struct PassStats {
  std::string pass;
  std::uint64_t wall_ns = 0;
  std::size_t findings = 0;  ///< raw count before global sort/dedup
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {}) : config_(config) {}

  /// Runs every rule family; the result is sorted by (rule, entities,
  /// message) and deduplicated — a pure function of the model. When
  /// `stats` is non-null it receives one entry per pass in execution
  /// order (the only place the analyzer reads a clock).
  [[nodiscard]] std::vector<Diagnostic> analyze(const Model& model) const;
  [[nodiscard]] std::vector<Diagnostic> analyze(const Model& model,
                                                std::vector<PassStats>* stats) const;

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
};

/// Number of diagnostics at exactly `severity`.
[[nodiscard]] std::size_t count_severity(const std::vector<Diagnostic>& diagnostics,
                                         Severity severity);

/// Human-readable report, one "severity[rule]: message" block per finding.
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diagnostics);

/// Deterministic JSON report: {"version":1,"findings":[...],"summary":{...}}.
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diagnostics);

}  // namespace agrarsec::analysis
