// Zone/conduit attack-path reachability dataflow. Extends the per-zone SL
// gap analysis of risk/iec62443 (which only looks at a zone's OWN
// countermeasures) with propagation of attacker capability across
// conduits: the protection a zone really offers is bounded by the weakest
// entry path into it, not by its local hardening.
//
// Semantics (per foundational requirement, independently):
//   - Entering a zone directly from the site perimeter must defeat the
//     zone's locally achieved SL-A (its installed countermeasures). Every
//     zone is a potential entry point — a remote forestry site has no
//     physically-guarded boundary an assessor may assume.
//   - Crossing from a compromised zone u into zone v over a conduit c
//     must defeat the CONDUIT's achieved SL-A only: an authorized conduit
//     is inside v's trust boundary, so v's perimeter countermeasures do
//     not re-gate traffic arriving over it (the classic trusted-channel
//     pivot). The hop barrier is max(effective(u), achieved(c)) — the
//     attacker must both hold u and beat the conduit. Conduits are
//     traversable in both directions: conduit direction models data flow,
//     not attacker movement.
//   - A path's resistance is the maximum barrier along it (every barrier
//     must fall); the attacker picks the weakest path, so the EFFECTIVE
//     resistance of a zone is the minimax over direct entry and all
//     conduit paths — a bottleneck-shortest-path fixpoint, always <= the
//     local SL-A.
//
// The SA rule family is built on this: a CAL3/CAL4 asset in a zone whose
// effective resistance falls below the zone's SL-T is reachable by an
// attacker the architecture claims to exclude, even when the zone's own
// countermeasure list looks complete.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "risk/iec62443.h"

namespace agrarsec::analysis {

/// Per-zone result of the attacker-capability dataflow.
struct ZoneReachability {
  ZoneId zone;
  std::string zone_name;
  /// SL-A from the zone's own countermeasures (entry barrier).
  risk::SlVector local{};
  /// Minimax resistance over all entry paths (<= local, per FR).
  risk::SlVector effective{};
  /// For each FR where effective < local: the undercutting entry path as
  /// "zone -> conduit -> zone -> ... -> conduit" hop names ending at this
  /// zone (this zone's name is not repeated). Empty when effective ==
  /// local in that FR (direct entry is already the weakest path).
  std::array<std::vector<std::string>, risk::kFrCount> witness;
};

/// Runs the fixpoint over the whole zone model. Deterministic: zones are
/// relaxed in declaration order, conduits in declaration order, until no
/// FR changes. Conduits referencing undeclared zones are skipped (ZC001
/// reports those).
[[nodiscard]] std::vector<ZoneReachability> compute_reachability(
    const risk::ZoneModel& zones,
    const std::vector<risk::Countermeasure>& catalogue);

/// Renders a witness path for diagnostics: "a -> c1 -> b" (empty -> "").
[[nodiscard]] std::string witness_to_string(const std::vector<std::string>& hops);

}  // namespace agrarsec::analysis
