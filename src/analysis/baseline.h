// Suppression baseline: accepted findings keyed (rule, entities) so CI
// gates on *new* findings only. The committed file format
// (`.agrarsec-lint-baseline.json`):
//
//   {
//     "version": 1,
//     "findings": [
//       {"rule": "ZC002", "entities": ["zone:data", "fr:dc"]}
//     ]
//   }
//
// Keys deliberately exclude the message text, so rewording a diagnostic
// never invalidates a committed baseline; changing the offending entities
// (a genuinely different finding) always does.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"

namespace agrarsec::analysis {

class Baseline {
 public:
  Baseline() = default;

  /// Builds a baseline accepting exactly the given findings.
  [[nodiscard]] static Baseline from(const std::vector<Diagnostic>& diagnostics);

  /// Parses the JSON format above; nullopt + `error` on malformed input.
  [[nodiscard]] static std::optional<Baseline> parse(std::string_view json,
                                                     std::string* error = nullptr);

  [[nodiscard]] bool covers(const Diagnostic& diagnostic) const {
    return keys_.contains(diagnostic.key());
  }

  /// The diagnostics NOT covered by this baseline (the "new" findings).
  [[nodiscard]] std::vector<Diagnostic> filter(
      std::vector<Diagnostic> diagnostics) const;

  /// Baseline keys no current diagnostic matches — suppressions that
  /// outlived their finding. Rendered as "RULE entity, entity" strings,
  /// sorted; the tool warns on them so fixed findings get un-suppressed
  /// instead of silently masking future regressions.
  [[nodiscard]] std::vector<std::string> stale_keys(
      const std::vector<Diagnostic>& diagnostics) const;

  /// Deterministic serialization of the format above (sorted keys).
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  std::set<std::string> keys_;  ///< Diagnostic::key() strings, sorted
};

}  // namespace agrarsec::analysis
