// The rule pack: four families of deterministic graph checks over the
// assembled model. Each family appends raw diagnostics; the Analyzer
// sorts/dedupes them into the final report.
//
//   ZC — IEC 62443 zone/conduit structure and SL gap analysis
//   TA — ISO/SAE 21434 TARA treatment and reference integrity
//   GS — GSN argument structure and compliance mapping integrity
//   PK — PKI trust relationships
#pragma once

#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model.h"

namespace agrarsec::analysis {

struct AnalyzerConfig {
  /// TA001: initial risk at or above this retained untreated is an error.
  risk::RiskValue high_risk = 4;
  /// ZC003: SL-T gap between bridged zones that demands a compensating
  /// conduit countermeasure.
  int conduit_gap = 2;
};

void run_zone_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out);
void run_tara_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out);
void run_gsn_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out);
void run_pki_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out);

/// Static description of one rule (for --list-rules and DESIGN.md §10).
struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view family;
  std::string_view summary;
};

/// All shipped rules, ordered by id.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

}  // namespace agrarsec::analysis
