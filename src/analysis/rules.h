// The rule pack: deterministic checks over the assembled model, grouped
// into passes. Each pass appends raw diagnostics; the Analyzer sorts and
// dedupes them into the final report.
//
// Structural passes (one model family each, PR 4):
//   ZC — IEC 62443 zone/conduit structure and SL gap analysis
//   TA — ISO/SAE 21434 TARA treatment and reference integrity
//   GS — GSN argument structure and compliance mapping integrity
//   PK — PKI trust relationships
//
// Semantic passes (cross-model, DESIGN.md §15):
//   SA — attack-path reachability: achieved SL under conduit propagation
//        vs. zone targets and asset CALs (analysis/reachability.h)
//   CM — TARA↔GSN↔zone consistency: treatments claimed by goals, per-zone
//        residual-risk budgets, treatment effectiveness
//   CV — coverage matrix: TARA threats × IDS rule table × executable
//        scenario registry (analysis/coverage.h)
#pragma once

#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/model.h"

namespace agrarsec::analysis {

struct AnalyzerConfig {
  /// TA001: initial risk at or above this retained untreated is an error.
  /// CM004 reuses it as the bar a treatment must push residual risk under.
  risk::RiskValue high_risk = 4;
  /// ZC003: SL-T gap between bridged zones that demands a compensating
  /// conduit countermeasure.
  int conduit_gap = 2;
  /// SA001/SA003: lowest CAL whose assets get reachability/SL-floor
  /// scrutiny (CAL3 per the certification argument: CAL3/CAL4 assets
  /// carry the safety case).
  risk::Cal reachability_min_cal = risk::Cal::kCal3;
  /// CM003: per-zone budget for the sum of residual risks of UNTREATED
  /// (retained) threat scenarios against the zone's assets. A zone
  /// accumulating more retained residual risk than this needs explicit
  /// treatment decisions, not silent acceptance.
  risk::RiskValue zone_residual_budget = 6;
};

void run_zone_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out);
void run_tara_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out);
void run_gsn_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out);
void run_pki_rules(const Model& model, const AnalyzerConfig& config,
                   std::vector<Diagnostic>& out);
/// SA + CM families (rules_semantic.cpp).
void run_semantic_rules(const Model& model, const AnalyzerConfig& config,
                        std::vector<Diagnostic>& out);
/// CV family (coverage.cpp).
void run_coverage_rules(const Model& model, const AnalyzerConfig& config,
                        std::vector<Diagnostic>& out);

/// Static description of one rule (for --list-rules and DESIGN.md §10/§15).
struct RuleInfo {
  std::string_view id;
  Severity severity;
  std::string_view family;
  /// Analyzer pass that emits the rule: "structural", "semantic" or
  /// "coverage" — the column --list-rules prints so a reader can tell
  /// single-model checks from cross-model reasoning at a glance.
  std::string_view pass;
  std::string_view summary;
};

/// All shipped rules, ordered by id.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

}  // namespace agrarsec::analysis
