// TA family: TARA reference integrity and treatment discipline (ISO/SAE
// 21434 clause 15). A risk assessment an assessor accepts has every high
// risk explicitly treated, every threat anchored to a declared asset,
// every applied control resolvable in the control catalogue, and no dead
// catalogue entries that were never instantiated against the item.
#include <string>
#include <unordered_set>

#include "analysis/rules.h"

namespace agrarsec::analysis {

void run_tara_rules(const Model& model, const AnalyzerConfig& config,
                    std::vector<Diagnostic>& out) {
  if (model.tara == nullptr) return;
  const risk::Tara& tara = *model.tara;

  std::unordered_set<std::string> known_controls;
  if (model.controls != nullptr) {
    for (const risk::Control& control : *model.controls) {
      known_controls.insert(control.id);
    }
  }

  for (const risk::AssessedThreat& result : tara.results()) {
    const std::string threat_entity = "threat:" + result.scenario.name;

    // TA001: a high initial risk left at "retain" is a missing treatment
    // decision — 21434 demands reduce/avoid/share (or a documented
    // acceptance, which this model expresses as a lower risk value).
    if (result.treatment == risk::Treatment::kRetain &&
        result.initial_risk >= config.high_risk) {
      Diagnostic d;
      d.rule = "TA001";
      d.severity = Severity::kError;
      d.entities = {threat_entity};
      d.message = "high-risk threat '" + result.scenario.name + "' (risk " +
                  std::to_string(result.initial_risk) +
                  ") has no treatment decision (retained untreated)";
      d.hint = "treat the risk (reduce/avoid/share) or justify acceptance";
      out.push_back(std::move(d));
    }

    // TA002: reference integrity — the scenario's asset must exist in the
    // item, and every applied control must resolve in the catalogue.
    if (tara.item().find(result.scenario.asset) == nullptr) {
      Diagnostic d;
      d.rule = "TA002";
      d.severity = Severity::kError;
      d.entities = {threat_entity,
                    "asset-id:" + std::to_string(result.scenario.asset.value())};
      d.message = "threat '" + result.scenario.name +
                  "' references unknown asset id " +
                  std::to_string(result.scenario.asset.value());
      d.hint = "declare the asset in the item definition or retarget the threat";
      out.push_back(std::move(d));
    }
    if (model.controls != nullptr) {
      for (const std::string& control : result.applied_controls) {
        if (known_controls.contains(control)) continue;
        Diagnostic d;
        d.rule = "TA002";
        d.severity = Severity::kError;
        d.entities = {threat_entity, "control:" + control};
        d.message = "threat '" + result.scenario.name +
                    "' applies control '" + control +
                    "' that is not in the control catalogue";
        d.hint = "add the control to the catalogue or re-assess against it";
        out.push_back(std::move(d));
      }
    }
  }

  // TA003: a threat-catalogue characteristic never instantiated against
  // any asset means a whole attack surface was skipped during analysis.
  if (model.characteristics != nullptr) {
    std::unordered_set<std::string> instantiated;
    for (const risk::AssessedThreat& result : tara.results()) {
      instantiated.insert(result.scenario.characteristic);
    }
    for (const risk::ForestryCharacteristic& characteristic :
         *model.characteristics) {
      if (instantiated.contains(characteristic.name)) continue;
      Diagnostic d;
      d.rule = "TA003";
      d.severity = Severity::kInfo;
      d.entities = {"characteristic:" + characteristic.name};
      d.message = "threat catalogue characteristic '" + characteristic.name +
                  "' is never instantiated against any asset";
      d.hint = "derive at least one threat scenario from it or record why not";
      out.push_back(std::move(d));
    }
  }
}

}  // namespace agrarsec::analysis
