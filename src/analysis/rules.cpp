#include "analysis/rules.h"

namespace agrarsec::analysis {

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"GS001", Severity::kError, "gsn",
       "argument cycle through supported_by / in_context_of edges"},
      {"GS002", Severity::kError, "gsn",
       "solution with no bound evidence or a dangling EvidenceId"},
      {"GS003", Severity::kWarning, "gsn",
       "goal neither developed nor marked undeveloped"},
      {"GS004", Severity::kError, "gsn",
       "compliance requirement mapped to a nonexistent goal"},
      {"PK001", Severity::kError, "pki",
       "endpoint certificate chain does not reach a trust-store root"},
      {"TA001", Severity::kError, "tara",
       "high-risk threat with no treatment decision"},
      {"TA002", Severity::kError, "tara",
       "threat references an unknown asset or an uncatalogued control"},
      {"TA003", Severity::kInfo, "tara",
       "threat catalogue characteristic never instantiated against any asset"},
      {"ZC001", Severity::kError, "zone-conduit",
       "conduit endpoint references an undeclared zone"},
      {"ZC002", Severity::kWarning, "zone-conduit",
       "achieved SL-A below target SL-T for a foundational requirement"},
      {"ZC003", Severity::kWarning, "zone-conduit",
       "conduit bridges an SL-T gap without a compensating countermeasure"},
      {"ZC004", Severity::kWarning, "zone-conduit",
       "item asset assigned to no zone"},
  };
  return kRules;
}

}  // namespace agrarsec::analysis
