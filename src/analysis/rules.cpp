#include "analysis/rules.h"

namespace agrarsec::analysis {

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"CM001", Severity::kError, "consistency", "semantic",
       "avoided/reduced threat with no claiming GSN goal in the argument"},
      {"CM002", Severity::kWarning, "consistency", "semantic",
       "claiming goal's argument context never names the treated asset"},
      {"CM003", Severity::kError, "consistency", "semantic",
       "zone's retained residual risk exceeds its residual-risk budget"},
      {"CM004", Severity::kWarning, "consistency", "semantic",
       "treatment applied but residual risk still at the high-risk bar"},
      {"CV001", Severity::kWarning, "coverage", "coverage",
       "threat with no IDS detection rule mapped to it"},
      {"CV002", Severity::kWarning, "coverage", "coverage",
       "treated threat with no executable attack scenario exercising it"},
      {"CV003", Severity::kInfo, "coverage", "coverage",
       "IDS rule whose mapped threats are absent from the TARA"},
      {"CV004", Severity::kInfo, "coverage", "coverage",
       "registered scenario exercising no catalogued threat"},
      {"GS001", Severity::kError, "gsn", "structural",
       "argument cycle through supported_by / in_context_of edges"},
      {"GS002", Severity::kError, "gsn", "structural",
       "solution with no bound evidence or a dangling EvidenceId"},
      {"GS003", Severity::kWarning, "gsn", "structural",
       "goal neither developed nor marked undeveloped"},
      {"GS004", Severity::kError, "gsn", "structural",
       "compliance requirement mapped to a nonexistent goal"},
      {"PK001", Severity::kError, "pki", "structural",
       "endpoint certificate chain does not reach a trust-store root"},
      {"SA001", Severity::kError, "attack-path", "semantic",
       "high-CAL asset in a zone whose effective SL falls below SL-T"},
      {"SA002", Severity::kWarning, "attack-path", "semantic",
       "entry path over conduits undercuts a zone's local defences"},
      {"SA003", Severity::kWarning, "attack-path", "semantic",
       "zone SL-T below the floor its assets' CAL demands"},
      {"SA004", Severity::kInfo, "attack-path", "semantic",
       "conduit hardened beyond both endpoint zone targets"},
      {"TA001", Severity::kError, "tara", "structural",
       "high-risk threat with no treatment decision"},
      {"TA002", Severity::kError, "tara", "structural",
       "threat references an unknown asset or an uncatalogued control"},
      {"TA003", Severity::kInfo, "tara", "structural",
       "threat catalogue characteristic never instantiated against any asset"},
      {"ZC001", Severity::kError, "zone-conduit", "structural",
       "conduit endpoint references an undeclared zone"},
      {"ZC002", Severity::kWarning, "zone-conduit", "structural",
       "achieved SL-A below target SL-T for a foundational requirement"},
      {"ZC003", Severity::kWarning, "zone-conduit", "structural",
       "conduit bridges an SL-T gap without a compensating countermeasure"},
      {"ZC004", Severity::kWarning, "zone-conduit", "structural",
       "item asset assigned to no zone"},
  };
  return kRules;
}

}  // namespace agrarsec::analysis
