#include "analysis/baseline.h"

#include <algorithm>

#include "analysis/json.h"

namespace agrarsec::analysis {

Baseline Baseline::from(const std::vector<Diagnostic>& diagnostics) {
  Baseline baseline;
  for (const Diagnostic& d : diagnostics) baseline.keys_.insert(d.key());
  return baseline;
}

std::optional<Baseline> Baseline::parse(std::string_view json, std::string* error) {
  const auto parsed = Json::parse(json, error);
  if (!parsed) return std::nullopt;
  if (!parsed->is(Json::Kind::kObject)) {
    if (error != nullptr) *error = "baseline root must be an object";
    return std::nullopt;
  }
  const Json* version = parsed->find("version");
  if (version == nullptr || !version->is(Json::Kind::kNumber) ||
      version->as_number() != 1.0) {
    if (error != nullptr) *error = "unsupported baseline version";
    return std::nullopt;
  }
  const Json* findings = parsed->find("findings");
  if (findings == nullptr || !findings->is(Json::Kind::kArray)) {
    if (error != nullptr) *error = "baseline requires a 'findings' array";
    return std::nullopt;
  }

  Baseline baseline;
  for (const Json& entry : findings->items()) {
    if (!entry.is(Json::Kind::kObject)) {
      if (error != nullptr) *error = "baseline finding must be an object";
      return std::nullopt;
    }
    const Json* rule = entry.find("rule");
    if (rule == nullptr || !rule->is(Json::Kind::kString)) {
      if (error != nullptr) *error = "baseline finding requires a 'rule' string";
      return std::nullopt;
    }
    Diagnostic key_source;
    key_source.rule = rule->as_string();
    if (const Json* entities = entry.find("entities"); entities != nullptr) {
      if (!entities->is(Json::Kind::kArray)) {
        if (error != nullptr) *error = "'entities' must be an array of strings";
        return std::nullopt;
      }
      for (const Json& entity : entities->items()) {
        if (!entity.is(Json::Kind::kString)) {
          if (error != nullptr) *error = "'entities' must be an array of strings";
          return std::nullopt;
        }
        key_source.entities.push_back(entity.as_string());
      }
    }
    baseline.keys_.insert(key_source.key());
  }
  return baseline;
}

std::vector<Diagnostic> Baseline::filter(std::vector<Diagnostic> diagnostics) const {
  diagnostics.erase(
      std::remove_if(diagnostics.begin(), diagnostics.end(),
                     [this](const Diagnostic& d) { return covers(d); }),
      diagnostics.end());
  return diagnostics;
}

std::vector<std::string> Baseline::stale_keys(
    const std::vector<Diagnostic>& diagnostics) const {
  std::set<std::string> live;
  for (const Diagnostic& d : diagnostics) live.insert(d.key());
  std::vector<std::string> stale;
  for (const std::string& key : keys_) {  // std::set: sorted, deterministic
    if (live.contains(key)) continue;
    // key = rule '\x1f' entity '\x1f' entity... -> "rule entity, entity".
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
      const std::size_t separator = key.find('\x1f', start);
      parts.push_back(key.substr(
          start, separator == std::string::npos ? std::string::npos
                                                : separator - start));
      if (separator == std::string::npos) break;
      start = separator + 1;
    }
    std::string rendered = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) {
      rendered += (i == 1 ? " " : ", ") + parts[i];
    }
    stale.push_back(std::move(rendered));
  }
  return stale;
}

std::string Baseline::to_json() const {
  Json findings = Json::array();
  for (const std::string& key : keys_) {  // std::set: sorted, deterministic
    Json finding = Json::object();
    Json entities = Json::array();
    std::size_t start = 0;
    std::size_t separator = key.find('\x1f');
    const std::string rule = key.substr(0, separator);
    while (separator != std::string::npos) {
      start = separator + 1;
      separator = key.find('\x1f', start);
      entities.push(Json::string(key.substr(start, separator == std::string::npos
                                                       ? std::string::npos
                                                       : separator - start)));
    }
    finding.set("rule", Json::string(rule));
    finding.set("entities", std::move(entities));
    findings.push(std::move(finding));
  }
  Json out = Json::object();
  out.set("version", Json::number(1));
  out.set("findings", std::move(findings));
  return out.serialize(2) + "\n";
}

}  // namespace agrarsec::analysis
