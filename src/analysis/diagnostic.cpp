#include "analysis/diagnostic.h"

#include <tuple>

namespace agrarsec::analysis {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::key() const {
  std::string out = rule;
  for (const std::string& entity : entities) {
    out += '\x1f';  // unit separator: cannot appear in entity names
    out += entity;
  }
  return out;
}

bool diagnostic_less(const Diagnostic& a, const Diagnostic& b) {
  return std::tie(a.rule, a.entities, a.message) <
         std::tie(b.rule, b.entities, b.message);
}

}  // namespace agrarsec::analysis
