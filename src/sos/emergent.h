// Runtime emergent-behaviour monitors (the Waller & Craddock problem that
// cannot be checked statically). Monitors subscribe to the worksite event
// bus and look for cross-system patterns no single constituent exhibits
// alone:
//   stop-start oscillation  e-stop/release cycling faster than plausible
//   cascade degradation     several systems degrade within a short window
//   productivity stall      pile backlog grows while forwarders sit idle
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/event_bus.h"
#include "core/time.h"

namespace agrarsec::sos {

struct EmergentFinding {
  std::string pattern;   ///< "stop-start-oscillation" | "cascade-degradation" | ...
  core::SimTime time = 0;
  std::string detail;
};

struct EmergentConfig {
  std::size_t oscillation_count = 4;                     ///< stops within window
  core::SimDuration oscillation_window = 60 * core::kSecond;
  std::size_t cascade_count = 3;                         ///< distinct origins
  core::SimDuration cascade_window = 10 * core::kSecond;
};

class EmergentBehaviorMonitor {
 public:
  explicit EmergentBehaviorMonitor(EmergentConfig config = {});

  /// Subscribes to "safety/estop" and "machine/degraded" topics.
  void attach(core::EventBus& bus);

  [[nodiscard]] const std::vector<EmergentFinding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::uint64_t count(const std::string& pattern) const;

 private:
  void on_estop(const core::Event& event);
  void on_degraded(const core::Event& event);

  EmergentConfig config_;
  std::deque<core::SimTime> estop_times_;
  std::deque<std::pair<std::uint64_t, core::SimTime>> degraded_events_;
  std::vector<EmergentFinding> findings_;
};

}  // namespace agrarsec::sos
