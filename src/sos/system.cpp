#include "sos/system.h"

#include <algorithm>

namespace agrarsec::sos {

std::string_view system_role_name(SystemRole role) {
  switch (role) {
    case SystemRole::kAutonomousMachine: return "autonomous-machine";
    case SystemRole::kDrone: return "drone";
    case SystemRole::kOperatorStation: return "operator-station";
    case SystemRole::kInfrastructure: return "infrastructure";
  }
  return "?";
}

SystemId SosComposition::add_system(ConstituentSystem system) {
  system.id = ids_.next();
  systems_.push_back(std::move(system));
  return systems_.back().id;
}

void SosComposition::add_contract(InterfaceContract contract) {
  contracts_.push_back(std::move(contract));
}

const ConstituentSystem* SosComposition::system(SystemId id) const {
  for (const ConstituentSystem& s : systems_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::vector<CompositionIssue> SosComposition::check_capabilities() const {
  std::vector<CompositionIssue> out;
  for (const InterfaceContract& c : contracts_) {
    const ConstituentSystem* producer = system(c.producer);
    const ConstituentSystem* consumer = system(c.consumer);
    if (producer == nullptr || consumer == nullptr) {
      out.push_back({"capability", "contract '" + c.name + "' references an unknown system"});
      continue;
    }
    if (std::find(producer->produces.begin(), producer->produces.end(), c.message) ==
        producer->produces.end()) {
      out.push_back({"capability", "'" + producer->name + "' does not produce " +
                                       std::string(net::message_type_name(c.message)) +
                                       " required by contract '" + c.name + "'"});
    }
    if (std::find(consumer->consumes.begin(), consumer->consumes.end(), c.message) ==
        consumer->consumes.end()) {
      out.push_back({"capability", "'" + consumer->name + "' does not consume " +
                                       std::string(net::message_type_name(c.message)) +
                                       " required by contract '" + c.name + "'"});
    }
  }
  return out;
}

std::vector<CompositionIssue> SosComposition::check_operational_independence() const {
  std::vector<CompositionIssue> out;
  for (const InterfaceContract& c : contracts_) {
    const ConstituentSystem* producer = system(c.producer);
    const ConstituentSystem* consumer = system(c.consumer);
    if (producer == nullptr || consumer == nullptr) continue;
    // A system demanding encryption cannot be bound by a plaintext contract.
    for (const ConstituentSystem* s : {producer, consumer}) {
      if (s->policy.requires_encryption && !c.encrypted) {
        out.push_back({"operational",
                       "'" + s->name + "' requires encryption but contract '" + c.name +
                           "' is plaintext"});
      }
      if (s->policy.requires_mutual_auth && !c.mutually_authenticated) {
        out.push_back({"operational",
                       "'" + s->name + "' requires mutual auth but contract '" +
                           c.name + "' is unauthenticated"});
      }
    }
  }
  return out;
}

std::vector<CompositionIssue> SosComposition::check_management_independence() const {
  std::vector<CompositionIssue> out;
  for (const InterfaceContract& c : contracts_) {
    const ConstituentSystem* producer = system(c.producer);
    const ConstituentSystem* consumer = system(c.consumer);
    if (producer == nullptr || consumer == nullptr) continue;
    if (producer->organization != consumer->organization &&
        !c.mutually_authenticated) {
      out.push_back({"management",
                     "contract '" + c.name + "' crosses organizations ('" +
                         producer->organization + "' -> '" + consumer->organization +
                         "') without mutual authentication"});
    }
  }
  return out;
}

std::vector<CompositionIssue> SosComposition::check_evolution() const {
  std::vector<CompositionIssue> out;
  for (const InterfaceContract& c : contracts_) {
    const ConstituentSystem* producer = system(c.producer);
    const ConstituentSystem* consumer = system(c.consumer);
    if (producer == nullptr || consumer == nullptr) continue;
    if (producer->interface_version != c.version ||
        consumer->interface_version != c.version) {
      out.push_back({"evolution",
                     "contract '" + c.name + "' at version " +
                         std::to_string(c.version) + " but '" + producer->name +
                         "' is at " + std::to_string(producer->interface_version) +
                         " and '" + consumer->name + "' at " +
                         std::to_string(consumer->interface_version)});
    }
  }
  return out;
}

std::vector<CompositionIssue> SosComposition::check_geographic() const {
  std::vector<CompositionIssue> out;
  for (const InterfaceContract& c : contracts_) {
    const ConstituentSystem* producer = system(c.producer);
    const ConstituentSystem* consumer = system(c.consumer);
    if (producer == nullptr || consumer == nullptr) continue;
    if (c.carries_personal_data &&
        producer->jurisdiction != consumer->jurisdiction &&
        !producer->policy.allows_data_export) {
      out.push_back({"geographic",
                     "contract '" + c.name + "' exports personal data from " +
                         producer->jurisdiction + " to " + consumer->jurisdiction +
                         " against '" + producer->name + "' policy"});
    }
  }
  return out;
}

std::vector<CompositionIssue> SosComposition::check() const {
  std::vector<CompositionIssue> out;
  for (auto&& issues :
       {check_capabilities(), check_operational_independence(),
        check_management_independence(), check_evolution(), check_geographic()}) {
    out.insert(out.end(), issues.begin(), issues.end());
  }
  return out;
}

SosComposition build_forestry_sos() {
  SosComposition sos;
  using MT = net::MessageType;

  ConstituentSystem forwarder;
  forwarder.name = "autonomous-forwarder";
  forwarder.organization = "forest-machine-oem";
  forwarder.jurisdiction = "SE";
  forwarder.role = SystemRole::kAutonomousMachine;
  forwarder.produces = {MT::kTelemetry, MT::kEstopAck, MT::kHeartbeat};
  forwarder.consumes = {MT::kDetectionReport, MT::kEstopCommand, MT::kMissionCommand,
                        MT::kFirmwareChunk, MT::kCrlUpdate};
  const SystemId forwarder_id = sos.add_system(std::move(forwarder));

  ConstituentSystem drone;
  drone.name = "observation-drone";
  drone.organization = "drone-vendor";
  drone.jurisdiction = "SE";
  drone.role = SystemRole::kDrone;
  drone.produces = {MT::kDetectionReport, MT::kTelemetry, MT::kHeartbeat};
  drone.consumes = {MT::kMissionCommand, MT::kFirmwareChunk, MT::kCrlUpdate};
  const SystemId drone_id = sos.add_system(std::move(drone));

  ConstituentSystem operator_station;
  operator_station.name = "operator-station";
  operator_station.organization = "forestry-company";
  operator_station.jurisdiction = "SE";
  operator_station.role = SystemRole::kOperatorStation;
  operator_station.produces = {MT::kMissionCommand, MT::kEstopCommand,
                               MT::kFirmwareChunk, MT::kCrlUpdate};
  operator_station.consumes = {MT::kTelemetry, MT::kDetectionReport, MT::kEstopAck,
                               MT::kHeartbeat};
  const SystemId operator_id = sos.add_system(std::move(operator_station));

  auto contract = [&](const std::string& name, SystemId producer, SystemId consumer,
                      MT message, bool personal_data = false) {
    InterfaceContract c;
    c.name = name;
    c.producer = producer;
    c.consumer = consumer;
    c.message = message;
    c.carries_personal_data = personal_data;
    sos.add_contract(std::move(c));
  };

  contract("drone-detections", drone_id, forwarder_id, MT::kDetectionReport);
  contract("forwarder-telemetry", forwarder_id, operator_id, MT::kTelemetry, true);
  contract("drone-telemetry", drone_id, operator_id, MT::kTelemetry);
  contract("missions", operator_id, forwarder_id, MT::kMissionCommand);
  contract("drone-missions", operator_id, drone_id, MT::kMissionCommand);
  contract("estop", operator_id, forwarder_id, MT::kEstopCommand);
  contract("estop-ack", forwarder_id, operator_id, MT::kEstopAck);
  contract("fw-updates", operator_id, forwarder_id, MT::kFirmwareChunk);
  contract("crl-distribution", operator_id, forwarder_id, MT::kCrlUpdate);
  return sos;
}

}  // namespace agrarsec::sos
