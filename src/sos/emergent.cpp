#include "sos/emergent.h"

#include <algorithm>
#include <set>

namespace agrarsec::sos {

EmergentBehaviorMonitor::EmergentBehaviorMonitor(EmergentConfig config)
    : config_(config) {}

void EmergentBehaviorMonitor::attach(core::EventBus& bus) {
  bus.subscribe("safety/estop",
                [this](const core::Event& e) { on_estop(e); });
  bus.subscribe("machine/degraded",
                [this](const core::Event& e) { on_degraded(e); });
}

void EmergentBehaviorMonitor::on_estop(const core::Event& event) {
  estop_times_.push_back(event.time);
  while (!estop_times_.empty() &&
         estop_times_.front() + config_.oscillation_window < event.time) {
    estop_times_.pop_front();
  }
  if (estop_times_.size() >= config_.oscillation_count) {
    findings_.push_back(
        {"stop-start-oscillation", event.time,
         std::to_string(estop_times_.size()) + " e-stops within " +
             std::to_string(config_.oscillation_window / core::kSecond) + " s"});
    estop_times_.clear();  // re-arm
  }
}

void EmergentBehaviorMonitor::on_degraded(const core::Event& event) {
  degraded_events_.emplace_back(event.origin, event.time);
  while (!degraded_events_.empty() &&
         degraded_events_.front().second + config_.cascade_window < event.time) {
    degraded_events_.pop_front();
  }
  std::set<std::uint64_t> origins;
  for (const auto& [origin, time] : degraded_events_) origins.insert(origin);
  if (origins.size() >= config_.cascade_count) {
    findings_.push_back({"cascade-degradation", event.time,
                         std::to_string(origins.size()) +
                             " systems degraded within " +
                             std::to_string(config_.cascade_window / core::kSecond) +
                             " s"});
    degraded_events_.clear();
  }
}

std::uint64_t EmergentBehaviorMonitor::count(const std::string& pattern) const {
  return static_cast<std::uint64_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [&](const EmergentFinding& f) { return f.pattern == pattern; }));
}

}  // namespace agrarsec::sos
