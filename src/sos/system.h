// System-of-Systems composition model (paper §IV-E). Constituent systems
// keep operational and managerial independence; this module makes the
// five Waller & Craddock problem areas *checkable*:
//   operational independence -> policy-conflict detection on contracts
//   management independence  -> org-boundary contracts need mutual auth
//   evolutionary development -> interface version-skew detection
//   emergent behavior        -> runtime monitors (emergent.h)
//   geographic distribution  -> jurisdiction constraints on data flows
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "net/message.h"

namespace agrarsec::sos {

enum class SystemRole : std::uint8_t {
  kAutonomousMachine = 0,
  kDrone = 1,
  kOperatorStation = 2,
  kInfrastructure = 3,   ///< e.g. site gateway, CA
};

[[nodiscard]] std::string_view system_role_name(SystemRole role);

/// Security policy a constituent system enforces on its interfaces.
struct SecurityPolicy {
  bool requires_encryption = true;
  bool requires_mutual_auth = true;
  int min_security_level = 2;      ///< IEC 62443 SL it expects of peers
  bool allows_data_export = true;  ///< may site data leave the jurisdiction
};

struct ConstituentSystem {
  SystemId id;
  std::string name;
  std::string organization;    ///< managing entity (management independence)
  std::string jurisdiction;    ///< e.g. "SE", "FI" (geographic distribution)
  SystemRole role = SystemRole::kAutonomousMachine;
  std::uint32_t interface_version = 1;
  SecurityPolicy policy;
  std::vector<net::MessageType> produces;
  std::vector<net::MessageType> consumes;
};

/// A contracted interaction between two constituent systems.
struct InterfaceContract {
  std::string name;
  SystemId producer;
  SystemId consumer;
  net::MessageType message = net::MessageType::kTelemetry;
  bool encrypted = true;
  bool mutually_authenticated = true;
  std::uint32_t version = 1;
  bool carries_personal_data = false;
};

/// A detected composition problem.
struct CompositionIssue {
  std::string category;  ///< "operational" | "management" | "evolution" | "geographic" | "capability"
  std::string detail;
};

class SosComposition {
 public:
  SystemId add_system(ConstituentSystem system);
  void add_contract(InterfaceContract contract);

  [[nodiscard]] const std::vector<ConstituentSystem>& systems() const {
    return systems_;
  }
  [[nodiscard]] const std::vector<InterfaceContract>& contracts() const {
    return contracts_;
  }
  [[nodiscard]] const ConstituentSystem* system(SystemId id) const;

  /// Runs every static composition check; empty result = composable.
  [[nodiscard]] std::vector<CompositionIssue> check() const;

  // Individual checks (also used by tests):
  [[nodiscard]] std::vector<CompositionIssue> check_capabilities() const;
  [[nodiscard]] std::vector<CompositionIssue> check_operational_independence() const;
  [[nodiscard]] std::vector<CompositionIssue> check_management_independence() const;
  [[nodiscard]] std::vector<CompositionIssue> check_evolution() const;
  [[nodiscard]] std::vector<CompositionIssue> check_geographic() const;

 private:
  std::vector<ConstituentSystem> systems_;
  std::vector<InterfaceContract> contracts_;
  IdAllocator<SystemId> ids_;
};

/// Builds the paper's use-case SoS: autonomous forwarder (OEM A), drone
/// (drone vendor B), operator station (forestry company), site gateway.
[[nodiscard]] SosComposition build_forestry_sos();

}  // namespace agrarsec::sos
