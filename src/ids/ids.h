// Worksite intrusion detection system: a signature rule engine plus
// per-sender statistical detectors over the radio traffic. Designed for
// the constraint the paper highlights (Table I, §IV-B): remote sites have
// no cloud backhaul, so detection and response run locally.
//
// Rules implemented (stable ids, see Alert::rule):
//   "unknown-sender"   message from an id not in the site roster
//   "spoofed-position" telemetry kinematically impossible vs. last report
//   "replay"           (sender, sequence) not strictly increasing
//   "stale-timestamp"  message timestamp far behind site time
//   "flood"            per-source frame rate above threshold
//   "malformed"        undecodable message
//   "unauthorized-estop" e-stop from a sender without e-stop authority
//   "rate-anomaly"     EWMA band violation on aggregate traffic
//   "rate-shift"       CUSUM drift on aggregate traffic
//
// Control-plane sensor family (observe_control; fed by the operations
// console, which is itself an attack surface — handshake failures,
// rejected records and command rates are detectable events):
//   "control-bruteforce"   consecutive failed handshakes/authz denials
//   "control-replay-burst" rejected sealed records with no genuine one between
//   "control-flood"        authenticated command rate above threshold
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "obs/telemetry.h"
#include "ids/alert.h"
#include "ids/anomaly.h"
#include "net/message.h"
#include "net/radio.h"

namespace agrarsec::ids {

struct IdsConfig {
  bool enable_signatures = true;
  bool enable_anomaly = true;
  double max_speed_mps = 12.0;          ///< fastest credible machine speed
  core::SimDuration max_timestamp_lag = 10 * core::kSecond;
  std::uint64_t flood_threshold = 60;    ///< frames / source / second
  double ewma_alpha = 0.05;
  double ewma_k = 6.0;
  double cusum_slack = 5.0;
  double cusum_threshold = 120.0;
  std::size_t alert_capacity = 100000;   ///< ring buffer bound

  // Control-plane sensor thresholds (observe_control). The streak-based
  // rules are event-count triggers on purpose: they fire deterministically
  // regardless of how fast the attacker (or a test) drives the channel.
  std::uint64_t control_bruteforce_threshold = 5;  ///< consecutive failures
  std::uint64_t control_replay_threshold = 8;      ///< rejects since last genuine record
  std::uint64_t control_flood_threshold = 30;      ///< commands per flood window
  core::SimDuration control_flood_window = 10 * core::kSecond;
};

/// One observable event on the console control plane.
enum class ControlPlaneEvent : std::uint8_t {
  kHandshakeOk = 0,        ///< authenticated + authorized session established
  kHandshakeFailed = 1,    ///< handshake flight undecodable or crypto failure
  kAuthzDenied = 2,        ///< authenticated subject not on the allow list
  kRecordRejected = 3,     ///< sealed record undecodable / AEAD or replay reject
  kRecordAccepted = 4,     ///< sealed record opened within the replay window
  kCommandDispatched = 5,  ///< verb executed against the fleet
};

class IntrusionDetectionSystem {
 public:
  /// With no `telemetry` the IDS owns a private obs::Telemetry; inject a
  /// shared one to merge alert counters ("ids.alerts", "ids.alerts.<rule>")
  /// and per-alert flight events into a stack-wide export.
  explicit IntrusionDetectionSystem(IdsConfig config = {},
                                    obs::Telemetry* telemetry = nullptr);

  /// Declares a legitimate participant. `may_estop` grants e-stop authority.
  void register_node(std::uint64_t sender_id, bool may_estop);

  /// Observes one frame (wire bytes; the IDS parses the plaintext message
  /// layer — encrypted records are checked at rate level only).
  void observe(const net::Frame& frame, core::SimTime now);

  /// Advances window-based detectors; call once per sim step.
  void tick(core::SimTime now);

  /// Observes one control-plane event from the operations console
  /// (first-class sensor: an attack on the control plane is itself a
  /// detectable event). `subject` is the peer identity when known.
  /// Timestamps are whatever clock the console runs on (wall ms there) —
  /// only the flood rule is time-window based; the streak rules count
  /// events.
  void observe_control(ControlPlaneEvent event, core::SimTime now,
                       std::uint64_t subject = 0);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t alert_count(const std::string& rule) const;
  [[nodiscard]] std::uint64_t total_alerts() const { return alerts_.size(); }

  /// Callback invoked on every raised alert (safety monitor hook).
  void set_alert_handler(std::function<void(const Alert&)> handler);

  [[nodiscard]] const IdsConfig& config() const { return config_; }

  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }

 private:
  struct SenderState {
    bool known = false;
    bool may_estop = false;
    std::optional<net::TelemetryBody> last_telemetry;
    core::SimTime last_telemetry_time = 0;
    std::uint64_t last_sequence = 0;
    bool seen_sequence = false;
    RateWindow rate{100, 10};  ///< 1-second window at 100 ms buckets
  };

  void raise(core::SimTime now, std::string rule, AlertSeverity severity,
             std::uint64_t subject, std::string detail);
  SenderState& state_for(std::uint64_t sender_id);
  void check_signatures(const net::Message& message, core::SimTime now);

  IdsConfig config_;
  std::unordered_map<std::uint64_t, SenderState> senders_;
  std::vector<Alert> alerts_;
  /// Per-rule registry counters ("ids.alerts.<rule>"), cached by rule so
  /// raise() pays one hash lookup, not a registry map walk.
  std::unordered_map<std::string, obs::Counter*> counts_;
  std::function<void(const Alert&)> handler_;
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* c_alerts_ = nullptr;  ///< "ids.alerts" (all rules)
  IdAllocator<AlertId> alert_ids_;

  EwmaDetector ewma_;
  CusumDetector cusum_;
  std::uint64_t frames_this_tick_ = 0;

  // Control-plane sensor state.
  std::uint64_t control_fail_streak_ = 0;    ///< failures since last good handshake
  std::uint64_t control_reject_streak_ = 0;  ///< rejects since last genuine record
  RateWindow control_command_rate_;          ///< flood window (see IdsConfig)
};

}  // namespace agrarsec::ids
