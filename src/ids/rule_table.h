// Machine-readable catalogue of the IDS detection rules: stable rule id,
// engine kind, and the TARA threat scenarios (by catalogue name, see
// risk/catalog.cpp) each rule can detect. This is the table the
// agrarsec-lint coverage pass cross-references against the threat
// catalogue — a new IDS rule lands here in the same commit that teaches
// the engine to raise it, and a new TARA threat without a row in any
// rule's `threats` list shows up as a `threat-without-detection` finding.
//
// Deliberately header-light (strings and vectors only): the static
// analyzer links this table without pulling the radio/telemetry stack in.
#pragma once

#include <string>
#include <vector>

namespace agrarsec::ids {

struct DetectionRuleInfo {
  std::string id;           ///< stable rule id, matches Alert::rule
  std::string kind;         ///< "signature" or "anomaly"
  std::string description;  ///< what the rule fires on
  /// TARA threat-catalogue names (risk::forestry_threats) whose execution
  /// this rule can detect. Empty = the rule is not mapped to the
  /// catalogue (agrarsec-lint flags it as a dead detection rule).
  std::vector<std::string> threats;
};

/// All detection rules the engine (ids.cpp) can raise, ordered by id.
[[nodiscard]] const std::vector<DetectionRuleInfo>& detection_rule_table();

}  // namespace agrarsec::ids
