#include "ids/correlation.h"

#include <algorithm>

namespace agrarsec::ids {

AlertCorrelator::AlertCorrelator(CorrelatorConfig config) : config_(config) {}

Incident* AlertCorrelator::find_open(const Alert& alert) {
  // Prefer the most recent matching open incident.
  for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
    Incident& incident = *it;
    if (incident.closed) continue;
    if (alert.time > incident.last_alert + config_.gap_timeout) continue;
    const bool same_subject =
        alert.subject != 0 && incident.subjects.contains(alert.subject);
    const bool same_rule = incident.rules.contains(alert.rule);
    if (same_subject || same_rule) return &incident;
  }
  return nullptr;
}

void AlertCorrelator::ingest(const Alert& alert) {
  Incident* incident = find_open(alert);
  if (incident == nullptr) {
    Incident fresh;
    fresh.id = next_id_++;
    fresh.first_alert = alert.time;
    incidents_.push_back(std::move(fresh));
    incident = &incidents_.back();
  }
  incident->last_alert = std::max(incident->last_alert, alert.time);
  if (incident->alert_count == 0) incident->last_alert = alert.time;
  incident->rules.insert(alert.rule);
  if (alert.subject != 0) incident->subjects.insert(alert.subject);
  ++incident->alert_count;
  incident->max_severity = std::max(incident->max_severity, alert.severity);
}

void AlertCorrelator::tick(core::SimTime now) {
  for (Incident& incident : incidents_) {
    if (!incident.closed && incident.last_alert + config_.gap_timeout < now) {
      incident.closed = true;
    }
  }
}

std::size_t AlertCorrelator::open_count() const {
  return static_cast<std::size_t>(
      std::count_if(incidents_.begin(), incidents_.end(),
                    [](const Incident& i) { return !i.closed; }));
}

std::size_t AlertCorrelator::closed_count() const {
  return incidents_.size() - open_count();
}

std::string AlertCorrelator::summarize(const Incident& incident) {
  std::string rules;
  for (const std::string& rule : incident.rules) {
    if (!rules.empty()) rules += ",";
    rules += rule;
  }
  return "incident#" + std::to_string(incident.id) + " " +
         std::string(alert_severity_name(incident.max_severity)) + " x" +
         std::to_string(incident.alert_count) + " rules=[" + rules + "] over " +
         std::to_string(incident.duration() / core::kSecond) + "s";
}

}  // namespace agrarsec::ids
