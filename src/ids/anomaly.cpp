#include "ids/anomaly.h"

#include <cmath>
#include <stdexcept>

namespace agrarsec::ids {

EwmaDetector::EwmaDetector(double alpha, double k, std::uint32_t warmup)
    : alpha_(alpha), k_(k), warmup_(warmup) {
  if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("EwmaDetector: alpha in (0,1]");
  if (k <= 0.0) throw std::invalid_argument("EwmaDetector: k must be positive");
}

bool EwmaDetector::update(double sample) {
  if (seen_ == 0) {
    mean_ = sample;
    dev_ = 0.0;
    ++seen_;
    return false;
  }
  const bool anomalous =
      seen_ >= warmup_ && sample > mean_ + k_ * std::max(dev_, 1e-9);
  // Learn from the sample regardless — a slowly escalating attacker is the
  // CUSUM detector's job; EWMA tracks the legitimate baseline.
  const double err = sample - mean_;
  mean_ += alpha_ * err;
  dev_ = (1.0 - alpha_) * dev_ + alpha_ * std::abs(err);
  ++seen_;
  return anomalous;
}

CusumDetector::CusumDetector(double target, double slack, double threshold)
    : target_(target), slack_(slack), threshold_(threshold) {
  if (threshold <= 0.0) throw std::invalid_argument("CusumDetector: threshold > 0");
}

bool CusumDetector::update(double sample) {
  s_ = std::max(0.0, s_ + sample - target_ - slack_);
  if (s_ >= threshold_) {
    s_ = 0.0;
    return true;
  }
  return false;
}

RateWindow::RateWindow(std::int64_t bucket_ms, std::size_t buckets)
    : bucket_ms_(bucket_ms), buckets_(buckets, 0) {
  if (bucket_ms <= 0 || buckets == 0) {
    throw std::invalid_argument("RateWindow: positive bucket size and count required");
  }
}

void RateWindow::rotate(std::int64_t now_ms) {
  const std::int64_t bucket = now_ms / bucket_ms_;
  if (!started_) {
    head_bucket_ = bucket;
    started_ = true;
    return;
  }
  while (head_bucket_ < bucket) {
    ++head_bucket_;
    head_ = (head_ + 1) % buckets_.size();
    buckets_[head_] = 0;
  }
}

void RateWindow::add(std::int64_t now_ms) {
  rotate(now_ms);
  ++buckets_[head_];
}

std::uint64_t RateWindow::count(std::int64_t now_ms) const {
  if (!started_) return 0;
  const std::int64_t bucket = now_ms / bucket_ms_;
  // buckets_[(head_ - j) mod n] holds absolute bucket head_bucket_ - j.
  // A stored bucket is inside the window [bucket - n + 1, bucket] iff
  // head_bucket_ - j >= bucket - n + 1.
  const auto n = static_cast<std::int64_t>(buckets_.size());
  std::uint64_t total = 0;
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int64_t abs_bucket = head_bucket_ - j;
    if (abs_bucket < bucket - n + 1 || abs_bucket > bucket) continue;
    const std::size_t idx =
        (head_ + buckets_.size() - static_cast<std::size_t>(j)) % buckets_.size();
    total += buckets_[idx];
  }
  return total;
}

}  // namespace agrarsec::ids
