// Statistical anomaly detectors for message streams. Forestry worksites
// have no cloud backhaul for reactive security (Table I / §IV-B of the
// paper: limited connectivity alters reactive strategies), so these run
// fully on-machine with O(1) state.
#pragma once

#include <cstdint>
#include <vector>

namespace agrarsec::ids {

/// Exponentially weighted moving average with deviation bands. Flags a
/// sample when it exceeds mean + k * deviation.
class EwmaDetector {
 public:
  /// `alpha` smoothing in (0,1]; `k` band width; `warmup` samples are
  /// learned without alerting.
  EwmaDetector(double alpha, double k, std::uint32_t warmup = 16);

  /// Feeds one sample; returns true when anomalous.
  bool update(double sample);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double deviation() const { return dev_; }
  [[nodiscard]] bool warmed_up() const { return seen_ >= warmup_; }

 private:
  double alpha_;
  double k_;
  std::uint32_t warmup_;
  std::uint32_t seen_ = 0;
  double mean_ = 0.0;
  double dev_ = 0.0;
};

/// One-sided CUSUM detector for upward mean shifts: accumulates
/// (x - target - slack) and flags when the sum crosses `threshold`,
/// then resets.
class CusumDetector {
 public:
  CusumDetector(double target, double slack, double threshold);

  bool update(double sample);

  [[nodiscard]] double statistic() const { return s_; }
  void set_target(double target) { target_ = target; }

 private:
  double target_;
  double slack_;
  double threshold_;
  double s_ = 0.0;
};

/// Sliding-window rate counter: events per window, O(1) ring of buckets.
class RateWindow {
 public:
  /// `bucket_ms` granularity, `buckets` window length in buckets.
  RateWindow(std::int64_t bucket_ms, std::size_t buckets);

  void add(std::int64_t now_ms);
  /// Events within the window ending at `now_ms`.
  [[nodiscard]] std::uint64_t count(std::int64_t now_ms) const;

 private:
  void rotate(std::int64_t now_ms);

  std::int64_t bucket_ms_;
  std::vector<std::uint64_t> buckets_;
  std::int64_t head_bucket_ = 0;  ///< absolute bucket index of buckets_[head_]
  std::size_t head_ = 0;
  bool started_ = false;
};

}  // namespace agrarsec::ids
