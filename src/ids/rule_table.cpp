#include "ids/rule_table.h"

namespace agrarsec::ids {

const std::vector<DetectionRuleInfo>& detection_rule_table() {
  // Ordered by id; the threat names must match risk/catalog.cpp — the
  // lint coverage pass flags any drift (unknown name => dead mapping).
  static const std::vector<DetectionRuleInfo> kTable = {
      {"control-bruteforce", "signature",
       "consecutive failed control-plane handshakes/authz denials",
       {"console-handshake-bruteforce"}},
      {"control-flood", "signature",
       "authenticated command rate above threshold on the console control plane",
       {"console-command-flood"}},
      {"control-replay-burst", "signature",
       "burst of rejected sealed control records without a genuine one between",
       {"console-replay-burst"}},
      {"flood", "signature",
       "per-source frame rate above threshold",
       {"detection-suppression", "disaster-window-attack"}},
      {"malformed", "signature",
       "undecodable message on the site channel",
       {"rogue-node-join"}},
      {"rate-anomaly", "anomaly",
       "EWMA band violation on aggregate traffic (drop or surge)",
       {"detection-suppression", "estop-suppression"}},
      {"rate-shift", "anomaly",
       "CUSUM drift on aggregate traffic",
       {"detection-suppression", "estop-suppression"}},
      {"replay", "signature",
       "(sender, sequence) not strictly increasing",
       {"estop-replay"}},
      {"spoofed-position", "signature",
       "telemetry kinematically impossible vs. last report",
       {"telemetry-spoof", "gnss-spoof-walkoff"}},
      {"stale-timestamp", "signature",
       "message timestamp far behind site time (hold-back release)",
       {"estop-replay"}},
      {"unauthorized-estop", "signature",
       "e-stop from a sender without e-stop authority",
       {"rogue-node-join", "forged-mission"}},
      {"unknown-sender", "signature",
       "message from an id not in the site roster",
       {"rogue-node-join"}},
  };
  return kTable;
}

}  // namespace agrarsec::ids
