// Alert correlation: individual IDS alerts are grouped into *incidents*
// so a flood of 3 000 malformed-frame alerts reaches the operator (over
// the thin site uplink, Table I) as one incident with a count, not as
// 3 000 messages. Alerts join an open incident when they arrive within
// the gap window and share a subject or a rule with it; incidents close
// after the gap window passes silently.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/time.h"
#include "ids/alert.h"

namespace agrarsec::ids {

struct Incident {
  std::uint64_t id = 0;
  core::SimTime first_alert = 0;
  core::SimTime last_alert = 0;
  std::set<std::string> rules;
  std::set<std::uint64_t> subjects;
  std::uint64_t alert_count = 0;
  AlertSeverity max_severity = AlertSeverity::kInfo;
  bool closed = false;

  [[nodiscard]] core::SimDuration duration() const { return last_alert - first_alert; }
};

struct CorrelatorConfig {
  core::SimDuration gap_timeout = 30 * core::kSecond;
};

class AlertCorrelator {
 public:
  explicit AlertCorrelator(CorrelatorConfig config = {});

  /// Feeds one alert (call from the IDS alert handler).
  void ingest(const Alert& alert);

  /// Advances time: closes incidents whose gap window expired.
  void tick(core::SimTime now);

  [[nodiscard]] const std::vector<Incident>& incidents() const { return incidents_; }
  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] std::size_t closed_count() const;

  /// Compact operator line for an incident.
  [[nodiscard]] static std::string summarize(const Incident& incident);

 private:
  [[nodiscard]] Incident* find_open(const Alert& alert);

  CorrelatorConfig config_;
  std::vector<Incident> incidents_;
  std::uint64_t next_id_ = 1;
};

}  // namespace agrarsec::ids
