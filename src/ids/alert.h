// IDS alert model. Alerts feed the safety monitor (which may degrade to a
// safe state), the SoS coordination layer, and the assurance evidence
// registry (alert statistics become operational evidence).
#pragma once

#include <cstdint>
#include <string>

#include "core/time.h"
#include "core/types.h"

namespace agrarsec::ids {

enum class AlertSeverity : std::uint8_t { kInfo = 0, kWarning = 1, kCritical = 2 };

[[nodiscard]] std::string_view alert_severity_name(AlertSeverity severity);

struct Alert {
  AlertId id;
  core::SimTime time = 0;
  std::string rule;          ///< stable rule identifier, e.g. "replay"
  AlertSeverity severity = AlertSeverity::kWarning;
  std::uint64_t subject;     ///< implicated sender id (0 = unknown)
  std::string detail;
};

}  // namespace agrarsec::ids
