#include "ids/ids.h"

#include <cmath>

#include "core/geometry.h"

namespace agrarsec::ids {

std::string_view alert_severity_name(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo: return "info";
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "?";
}

IntrusionDetectionSystem::IntrusionDetectionSystem(IdsConfig config,
                                                   obs::Telemetry* telemetry)
    : config_(config),
      ewma_(config.ewma_alpha, config.ewma_k),
      cusum_(0.0, config.cusum_slack, config.cusum_threshold),
      control_command_rate_(
          config.control_flood_window >= 10 ? config.control_flood_window / 10 : 1,
          10) {
  if (telemetry != nullptr) {
    telemetry_ = telemetry;
  } else {
    owned_telemetry_ = std::make_unique<obs::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  c_alerts_ = &telemetry_->registry().counter("ids.alerts");
}

void IntrusionDetectionSystem::register_node(std::uint64_t sender_id, bool may_estop) {
  auto& s = senders_[sender_id];
  s.known = true;
  s.may_estop = may_estop;
}

IntrusionDetectionSystem::SenderState& IntrusionDetectionSystem::state_for(
    std::uint64_t sender_id) {
  return senders_[sender_id];
}

void IntrusionDetectionSystem::raise(core::SimTime now, std::string rule,
                                     AlertSeverity severity, std::uint64_t subject,
                                     std::string detail) {
  Alert alert;
  alert.id = alert_ids_.next();
  alert.time = now;
  alert.rule = std::move(rule);
  alert.severity = severity;
  alert.subject = subject;
  alert.detail = std::move(detail);

  c_alerts_->add();
  auto it = counts_.find(alert.rule);
  if (it == counts_.end()) {
    obs::Counter& c = telemetry_->registry().counter("ids.alerts." + alert.rule);
    it = counts_.emplace(alert.rule, &c).first;
  }
  it->second->add();
  telemetry_->recorder().record(now, "ids", alert.rule, alert.subject,
                                static_cast<std::uint64_t>(alert.severity), 0,
                                alert.detail);
  if (alerts_.size() < config_.alert_capacity) alerts_.push_back(alert);
  if (handler_) handler_(alert);
}

void IntrusionDetectionSystem::check_signatures(const net::Message& message,
                                                core::SimTime now) {
  SenderState& sender = state_for(message.sender);

  if (!sender.known) {
    raise(now, "unknown-sender", AlertSeverity::kWarning, message.sender,
          "message type " + std::string(net::message_type_name(message.type)) +
              " from unregistered id");
  }

  // Replay / sequence regression. Handshake and secure records manage
  // their own sequence spaces, so only plaintext app messages are checked.
  if (message.type != net::MessageType::kHandshake &&
      message.type != net::MessageType::kSecureRecord) {
    if (sender.seen_sequence && message.sequence <= sender.last_sequence) {
      raise(now, "replay", AlertSeverity::kCritical, message.sender,
            "sequence " + std::to_string(message.sequence) + " <= high-water " +
                std::to_string(sender.last_sequence));
    } else {
      sender.last_sequence = message.sequence;
      sender.seen_sequence = true;
    }

    if (message.timestamp + config_.max_timestamp_lag < now) {
      raise(now, "stale-timestamp", AlertSeverity::kWarning, message.sender,
            "timestamp lags site time by " +
                std::to_string(now - message.timestamp) + " ms");
    }
  }

  if (message.type == net::MessageType::kTelemetry) {
    if (const auto body = net::TelemetryBody::decode(message.body)) {
      if (sender.last_telemetry) {
        const double dt =
            static_cast<double>(now - sender.last_telemetry_time) / core::kSecond;
        if (dt > 1e-3) {
          const double dist = core::distance(
              core::Vec2{body->x, body->y},
              core::Vec2{sender.last_telemetry->x, sender.last_telemetry->y});
          if (dist / dt > config_.max_speed_mps * 2.0) {
            raise(now, "spoofed-position", AlertSeverity::kCritical, message.sender,
                  "implied speed " + std::to_string(dist / dt) + " m/s");
          }
        }
      }
      sender.last_telemetry = *body;
      sender.last_telemetry_time = now;
    } else {
      raise(now, "malformed", AlertSeverity::kWarning, message.sender,
            "undecodable telemetry body");
    }
  }

  if (message.type == net::MessageType::kEstopCommand && !sender.may_estop) {
    raise(now, "unauthorized-estop", AlertSeverity::kCritical, message.sender,
          "e-stop command from sender without authority");
  }
}

void IntrusionDetectionSystem::observe(const net::Frame& frame, core::SimTime now) {
  ++frames_this_tick_;

  const auto message = net::Message::decode(frame.payload);
  if (config_.enable_signatures) {
    if (!message) {
      raise(now, "malformed", AlertSeverity::kInfo, 0, "undecodable frame payload");
    } else {
      check_signatures(*message, now);
    }
  }

  if (message) {
    SenderState& sender = state_for(message->sender);
    sender.rate.add(now);
    if (config_.enable_signatures &&
        sender.rate.count(now) > config_.flood_threshold) {
      raise(now, "flood", AlertSeverity::kWarning, message->sender,
            "per-source rate above " + std::to_string(config_.flood_threshold) +
                " frames/s");
    }
  }
}

void IntrusionDetectionSystem::tick(core::SimTime now) {
  if (!config_.enable_anomaly) {
    frames_this_tick_ = 0;
    return;
  }
  const auto sample = static_cast<double>(frames_this_tick_);
  frames_this_tick_ = 0;

  if (ewma_.update(sample)) {
    raise(now, "rate-anomaly", AlertSeverity::kWarning, 0,
          "aggregate rate " + std::to_string(sample) + " above EWMA band (mean " +
              std::to_string(ewma_.mean()) + ")");
  }
  // CUSUM drifts against the learned EWMA baseline.
  cusum_.set_target(ewma_.mean());
  if (cusum_.update(sample)) {
    raise(now, "rate-shift", AlertSeverity::kWarning, 0,
          "sustained aggregate rate shift detected");
  }
}

void IntrusionDetectionSystem::observe_control(ControlPlaneEvent event,
                                               core::SimTime now,
                                               std::uint64_t subject) {
  switch (event) {
    case ControlPlaneEvent::kHandshakeOk:
      control_fail_streak_ = 0;
      break;
    case ControlPlaneEvent::kHandshakeFailed:
    case ControlPlaneEvent::kAuthzDenied:
      // Streak counter, not a time window: a brute-force probe is a run of
      // failures with no genuine session in between, however it is paced.
      if (++control_fail_streak_ == config_.control_bruteforce_threshold) {
        raise(now, "control-bruteforce", AlertSeverity::kCritical, subject,
              std::to_string(control_fail_streak_) +
                  " consecutive failed control-plane handshakes");
        control_fail_streak_ = 0;
      }
      break;
    case ControlPlaneEvent::kRecordRejected:
      if (++control_reject_streak_ == config_.control_replay_threshold) {
        raise(now, "control-replay-burst", AlertSeverity::kCritical, subject,
              std::to_string(control_reject_streak_) +
                  " rejected control records without a genuine one between");
        control_reject_streak_ = 0;
      }
      break;
    case ControlPlaneEvent::kRecordAccepted:
      control_reject_streak_ = 0;
      break;
    case ControlPlaneEvent::kCommandDispatched:
      control_command_rate_.add(now);
      if (control_command_rate_.count(now) > config_.control_flood_threshold) {
        raise(now, "control-flood", AlertSeverity::kWarning, subject,
              "command rate above " +
                  std::to_string(config_.control_flood_threshold) +
                  " per flood window");
      }
      break;
  }
}

std::uint64_t IntrusionDetectionSystem::alert_count(const std::string& rule) const {
  const auto it = counts_.find(rule);
  return it == counts_.end() ? 0 : it->second->value();
}

void IntrusionDetectionSystem::set_alert_handler(
    std::function<void(const Alert&)> handler) {
  handler_ = std::move(handler);
}

}  // namespace agrarsec::ids
