// Human workers on the partially-autonomous worksite. The paper's central
// safety function is detecting people close to the autonomous forwarder;
// workers here move with a random-waypoint model biased towards the
// manual harvesting area, which is where forwarders and people actually
// mix.
#pragma once

#include <optional>
#include <string>

#include "core/geometry.h"
#include "core/rng.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::sim {

struct HumanConfig {
  double walk_speed_mps = 1.3;
  double pause_probability = 0.3;    ///< chance of pausing at a waypoint
  core::SimDuration pause_mean = 20 * core::kSecond;
  double work_area_radius = 60.0;    ///< waypoints drawn near the anchor
  double body_height_m = 1.7;
};

class Human {
 public:
  /// `rng` is the worker's private random stream, forked at spawn keyed
  /// by the human id (core::Rng::fork_stream) — the same per-entity
  /// scheme as Machine, so a worker's walk is reproducible regardless of
  /// what any other entity drew or which thread stepped them.
  Human(HumanId id, std::string name, core::Vec2 position, core::Vec2 work_anchor,
        HumanConfig config, core::Rng rng = core::Rng{0});

  [[nodiscard]] HumanId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] core::Vec2 position() const { return position_; }
  [[nodiscard]] double height() const { return config_.body_height_m; }

  /// Re-anchors the work area (e.g. following the harvester).
  void set_work_anchor(core::Vec2 anchor) { work_anchor_ = anchor; }

  /// Advances the walk using the human's own stream.
  void step(core::SimDuration dt_ms) { step(dt_ms, rng_); }
  /// Legacy overload drawing from an external stream (standalone tests).
  void step(core::SimDuration dt_ms, core::Rng& rng);

 private:
  void pick_waypoint(core::Rng& rng);

  HumanId id_;
  std::string name_;
  core::Vec2 position_;
  core::Vec2 work_anchor_;
  HumanConfig config_;
  core::Rng rng_;
  std::optional<core::Vec2> waypoint_;
  core::SimDuration pause_remaining_ = 0;
};

}  // namespace agrarsec::sim
