// Uniform-grid spatial index over moving 2D points. The worksite's hot
// loop needs three query shapes at fleet scale — "humans near this
// machine" (separation tracking, perception), "nearest live pile"
// (forwarder dispatch), and radius queries in general — and all of them
// were brute-force O(n) scans in the seed. The grid makes them O(local
// density) while staying *exact*: every query applies the same Euclidean
// distance predicate a brute-force scan would, so results are
// bit-identical to brute force (the parity tests enforce this).
//
// Determinism: query results are returned in ascending id order, which
// for monotonically allocated ids equals insertion order — the same order
// a brute-force scan over the backing vector visits. This keeps RNG
// consumption downstream (per-candidate detection rolls) unchanged.
//
// Thread-safety: the index has no internal synchronisation, but the const
// queries (query_radius with a caller-owned buffer, nearest, position,
// contains) keep no mutable scratch, so any number of threads may query
// concurrently while no mutation is in flight. Callers that step in
// parallel must therefore split each step into a read phase (concurrent
// queries against the frozen grid) and a serial write phase (insert /
// update / remove) — the discipline Worksite::step() follows.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/geometry.h"

namespace agrarsec::sim {

class SpatialIndex {
 public:
  /// `bounds` sizes the dense cell array; points outside the bounds are
  /// accepted and clamped into the border cells, so callers need not
  /// guarantee containment. `cell_size` trades memory for query locality;
  /// a good default is the dominant query radius.
  SpatialIndex(core::Aabb bounds, double cell_size);

  /// Inserts a point, or moves it if `id` is already present.
  void insert(std::uint64_t id, core::Vec2 position);

  /// Moves an existing point; inserts when absent (humans/machines move
  /// every step, so this is the hottest mutation).
  void update(std::uint64_t id, core::Vec2 position);

  /// Removes a point; no-op when absent (piles are removed on exhaustion).
  void remove(std::uint64_t id);

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return entries_.find(id) != entries_.end();
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::optional<core::Vec2> position(std::uint64_t id) const;

  /// All ids with distance(position, center) <= radius, ascending id.
  [[nodiscard]] std::vector<std::uint64_t> query_radius(core::Vec2 center,
                                                        double radius) const;

  /// Allocation-free variant for per-step callers; `out` is cleared.
  void query_radius(core::Vec2 center, double radius,
                    std::vector<std::uint64_t>& out) const;

  /// Nearest point to `from` (ties broken towards the smaller id), or
  /// nullopt when the index is empty. Expanding-ring search; exact.
  [[nodiscard]] std::optional<std::uint64_t> nearest(core::Vec2 from) const;

 private:
  /// Cell payload: id + position inline, so queries never touch the hash
  /// map (one cache line per few candidates instead of a find per id).
  struct Item {
    std::uint64_t id = 0;
    core::Vec2 position;
  };
  struct Entry {
    std::size_t cell = 0;  ///< dense cell holding this id
    std::size_t slot = 0;  ///< index within the cell's item vector
  };

  [[nodiscard]] std::int64_t cell_x(double x) const;
  [[nodiscard]] std::int64_t cell_y(double y) const;
  [[nodiscard]] std::size_t cell_index(std::int64_t cx, std::int64_t cy) const {
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(cx);
  }
  void place(std::uint64_t id, Entry& entry, core::Vec2 position);
  void unplace(const Entry& entry, std::uint64_t id);

  core::Aabb bounds_;
  double cell_size_;
  std::int64_t width_ = 1;   ///< cells per row
  std::int64_t height_ = 1;  ///< cells per column
  std::vector<std::vector<Item>> cells_;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace agrarsec::sim
