#include "sim/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace agrarsec::sim {

SpatialIndex::SpatialIndex(core::Aabb bounds, double cell_size)
    : bounds_(bounds), cell_size_(std::max(1e-6, cell_size)) {
  width_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(bounds_.width() / cell_size_)));
  height_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(bounds_.height() / cell_size_)));
  cells_.resize(static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_));
}

std::int64_t SpatialIndex::cell_x(double x) const {
  const auto cx =
      static_cast<std::int64_t>(std::floor((x - bounds_.min.x) / cell_size_));
  return std::clamp<std::int64_t>(cx, 0, width_ - 1);
}

std::int64_t SpatialIndex::cell_y(double y) const {
  const auto cy =
      static_cast<std::int64_t>(std::floor((y - bounds_.min.y) / cell_size_));
  return std::clamp<std::int64_t>(cy, 0, height_ - 1);
}

void SpatialIndex::place(std::uint64_t id, Entry& entry, core::Vec2 position) {
  entry.cell = cell_index(cell_x(position.x), cell_y(position.y));
  std::vector<Item>& cell = cells_[entry.cell];
  entry.slot = cell.size();
  cell.push_back(Item{id, position});
}

void SpatialIndex::unplace(const Entry& entry, std::uint64_t id) {
  std::vector<Item>& cell = cells_[entry.cell];
  // Swap-and-pop; fix up the moved item's slot.
  const Item moved = cell.back();
  cell[entry.slot] = moved;
  cell.pop_back();
  if (moved.id != id) entries_.at(moved.id).slot = entry.slot;
}

void SpatialIndex::insert(std::uint64_t id, core::Vec2 position) {
  update(id, position);
}

void SpatialIndex::update(std::uint64_t id, core::Vec2 position) {
  auto [it, inserted] = entries_.try_emplace(id);
  if (!inserted) {
    Entry& entry = it->second;
    const std::size_t new_cell = cell_index(cell_x(position.x), cell_y(position.y));
    if (new_cell == entry.cell) {
      cells_[entry.cell][entry.slot].position = position;
      return;
    }
    unplace(entry, id);
  }
  place(id, it->second, position);
}

void SpatialIndex::remove(std::uint64_t id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  unplace(it->second, id);
  entries_.erase(it);
}

std::optional<core::Vec2> SpatialIndex::position(std::uint64_t id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return cells_[it->second.cell][it->second.slot].position;
}

std::vector<std::uint64_t> SpatialIndex::query_radius(core::Vec2 center,
                                                      double radius) const {
  std::vector<std::uint64_t> out;
  query_radius(center, radius, out);
  return out;
}

void SpatialIndex::query_radius(core::Vec2 center, double radius,
                                std::vector<std::uint64_t>& out) const {
  out.clear();
  if (entries_.empty() || radius < 0.0) return;

  // Cell range covering the query disc. Points outside the bounds live in
  // the border cells, so clamped ranges still see them.
  const std::int64_t min_cx = cell_x(center.x - radius);
  const std::int64_t max_cx = cell_x(center.x + radius);
  const std::int64_t min_cy = cell_y(center.y - radius);
  const std::int64_t max_cy = cell_y(center.y + radius);

  for (std::int64_t cy = min_cy; cy <= max_cy; ++cy) {
    for (std::int64_t cx = min_cx; cx <= max_cx; ++cx) {
      for (const Item& item : cells_[cell_index(cx, cy)]) {
        if (core::distance(item.position, center) <= radius) out.push_back(item.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::optional<std::uint64_t> SpatialIndex::nearest(core::Vec2 from) const {
  if (entries_.empty()) return std::nullopt;

  const std::int64_t cx0 = cell_x(from.x);
  const std::int64_t cy0 = cell_y(from.y);
  const std::int64_t max_ring = std::max(width_, height_);

  std::optional<std::uint64_t> best;
  double best_dist = 0.0;

  auto consider = [&](std::int64_t cx, std::int64_t cy) {
    for (const Item& item : cells_[cell_index(cx, cy)]) {
      const double d = core::distance(item.position, from);
      if (!best || d < best_dist || (d == best_dist && item.id < *best)) {
        best = item.id;
        best_dist = d;
      }
    }
  };

  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Cells at Chebyshev ring r lie at least (r-1)*cell_size away, so once
    // a candidate is closer than that the remaining rings cannot win (the
    // equality ring is still scanned, which is what makes ties exact).
    if (best && static_cast<double>(ring - 1) * cell_size_ > best_dist) break;

    if (ring == 0) {
      consider(cx0, cy0);
      continue;
    }
    const std::int64_t lo_x = std::max<std::int64_t>(0, cx0 - ring);
    const std::int64_t hi_x = std::min<std::int64_t>(width_ - 1, cx0 + ring);
    for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
      if (cy0 - ring >= 0) consider(cx, cy0 - ring);
      if (cy0 + ring <= height_ - 1) consider(cx, cy0 + ring);
    }
    const std::int64_t lo_y = std::max<std::int64_t>(0, cy0 - ring + 1);
    const std::int64_t hi_y = std::min<std::int64_t>(height_ - 1, cy0 + ring - 1);
    for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
      if (cx0 - ring >= 0) consider(cx0 - ring, cy);
      if (cx0 + ring <= width_ - 1) consider(cx0 + ring, cy);
    }
  }
  return best;
}

}  // namespace agrarsec::sim
