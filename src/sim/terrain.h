// Forest terrain: a smooth height field (sum of Gaussian hills) plus
// discrete obstacles (tree stems, boulders, brush). The central query is
// 3D line-of-sight, which is exactly what the paper's Figure 2 use case
// is about: terrain obstacles occlude the forwarder's ground-level view
// of people, while an elevated drone viewpoint clears them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/geometry.h"
#include "core/rng.h"

namespace agrarsec::sim {

enum class ObstacleKind : std::uint8_t { kTree = 0, kBoulder = 1, kBrush = 2 };

struct Obstacle {
  ObstacleKind kind = ObstacleKind::kTree;
  core::Circle footprint;
  double height_m = 0.0;  ///< occluding height above local ground
};

/// A smooth hill in the height field.
struct Hill {
  core::Vec2 center;
  double height_m = 0.0;
  double radius_m = 0.0;  ///< Gaussian sigma
};

struct ForestConfig {
  core::Aabb bounds{{0, 0}, {500, 500}};
  double trees_per_hectare = 400.0;  ///< typical managed Nordic forest
  double tree_radius_mean = 0.18;    ///< stem radius, metres
  double tree_height_mean = 16.0;
  double boulders_per_hectare = 8.0;
  double boulder_radius_mean = 1.1;
  double boulder_height_mean = 1.4;
  double brush_per_hectare = 40.0;
  double brush_radius_mean = 0.9;
  double brush_height_mean = 1.2;
  std::size_t hill_count = 6;
  double hill_height_max = 8.0;
  double hill_radius_mean = 60.0;
};

class Terrain {
 public:
  Terrain(core::Aabb bounds, std::vector<Obstacle> obstacles, std::vector<Hill> hills);

  /// Procedurally generates a forest stand.
  static Terrain generate(const ForestConfig& config, core::Rng& rng);

  [[nodiscard]] const core::Aabb& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  /// Ground elevation at a point.
  [[nodiscard]] double ground_height(core::Vec2 p) const;

  /// What (if anything) blocks the 3D sight line between two points given
  /// with heights *above ground* at their planar positions.
  enum class OcclusionCause : std::uint8_t {
    kNone = 0,
    kTree = 1,
    kBoulder = 2,
    kBrush = 3,
    kTerrain = 4,  ///< hill crest between the endpoints
  };
  [[nodiscard]] OcclusionCause occlusion_cause(core::Vec2 from_xy, double from_agl,
                                               core::Vec2 to_xy, double to_agl) const;

  /// One bundled sight line for occlusion_cause_batch: target planar
  /// position plus its height above local ground.
  struct LosTarget {
    core::Vec2 to_xy;
    double to_agl = 0.0;
  };

  /// Batched line-of-sight: resolves the occlusion cause of `count` rays
  /// that share one origin (a sensor frame) into out[i], each exactly
  /// equal to occlusion_cause(from_xy, from_agl, targets[i]...) — the
  /// equivalence test in tests/sim/occlusion_batch_test.cpp pins this
  /// bit-for-bit, degenerate rays included. The batch amortises what the
  /// per-ray entry point redoes every call: the origin's ground height is
  /// sampled once per bundle, the candidate walk reuses one shared
  /// stamp/scratch state with no per-ray allocation, and rays are
  /// evaluated in direction-sorted order so consecutive CSR grid walks
  /// revisit warm cells. Uses the mutable query scratch — not
  /// thread-safe, like every other terrain query.
  void occlusion_cause_batch(core::Vec2 from_xy, double from_agl,
                             const LosTarget* targets, std::size_t count,
                             OcclusionCause* out) const;
  /// Vector convenience overload; resizes `out` to targets.size().
  void occlusion_cause_batch(core::Vec2 from_xy, double from_agl,
                             const std::vector<LosTarget>& targets,
                             std::vector<OcclusionCause>& out) const;

  /// 3D line-of-sight between two points given with heights *above ground*
  /// at their respective planar positions. Checks both obstacle occlusion
  /// and terrain (hill) occlusion.
  [[nodiscard]] bool line_of_sight(core::Vec2 from_xy, double from_agl,
                                   core::Vec2 to_xy, double to_agl) const {
    return occlusion_cause(from_xy, from_agl, to_xy, to_agl) == OcclusionCause::kNone;
  }

  /// True when the disc of `radius` at `p` overlaps an obstacle footprint
  /// (for machine/human placement and navigation).
  [[nodiscard]] bool blocked(core::Vec2 p, double radius) const;

  /// Obstacles whose footprint comes within `margin` of segment [a,b],
  /// in ascending obstacle-index order (occlusion_cause depends on it).
  [[nodiscard]] std::vector<const Obstacle*> obstacles_near_segment(
      core::Vec2 a, core::Vec2 b, double margin = 0.0) const;

  /// True when any obstacle footprint comes within `margin` of segment
  /// [a,b]. Same predicate as obstacles_near_segment but returns on the
  /// first hit without materialising the result — this is the planner's
  /// inner-loop query (path smoothing probes thousands of segments and
  /// only cares about clear/not-clear).
  [[nodiscard]] bool segment_blocked(core::Vec2 a, core::Vec2 b,
                                     double margin = 0.0) const;

  [[nodiscard]] std::size_t obstacle_count() const { return obstacles_.size(); }

 private:
  void build_index();
  /// Stamp-walk of the 3x3 cell neighbourhoods crossed by [a, b] into
  /// candidate_scratch_ (deduped, sorted ascending) — the shared
  /// candidate-collection core of obstacles_near_segment and the
  /// occlusion paths.
  void collect_segment_candidates(core::Vec2 a, core::Vec2 b) const;
  /// Per-ray occlusion body with the origin's absolute height precomputed
  /// (z_from = ground_height(from_xy) + from_agl). Shared by the single
  /// and batched entry points so their results are identical by
  /// construction.
  [[nodiscard]] OcclusionCause occlusion_cause_from(core::Vec2 from_xy, double z_from,
                                                    core::Vec2 to_xy,
                                                    double to_agl) const;
  /// Dense-grid slot for a raw cell coordinate (the traverse_grid
  /// convention: floor(v / cell_size)); out-of-range coordinates clamp to
  /// the border, which only widens candidate sets — the exact distance
  /// predicates keep results identical.
  [[nodiscard]] std::size_t cell_slot(std::int64_t cx, std::int64_t cy) const;

  core::Aabb bounds_;
  std::vector<Obstacle> obstacles_;
  std::vector<Hill> hills_;
  /// Upper bound on ground_height anywhere (sum of hill amplitudes):
  /// rays whose lowest endpoint clears it can skip terrain sampling
  /// entirely — exact, because the skipped test could never fire (the
  /// occlusion margin is 1e-9 m, orders of magnitude above the lerp's
  /// rounding error). This is what makes drone-altitude rays cheap.
  double hills_height_sum_ = 0.0;
  double cell_size_ = 10.0;

  // CSR cell index over a dense grid: obstacles are static after
  // construction, so cell membership lives in one flat array
  // (cell_items_[cell_start_[s] .. cell_start_[s+1]]) instead of a
  // hash map of vectors — the segment queries dominate the simulation
  // profile and become pure pointer arithmetic over contiguous memory.
  std::int64_t min_cx_ = 0;  ///< raw cell coordinate of grid column 0
  std::int64_t min_cy_ = 0;
  std::int64_t width_ = 1;
  std::int64_t height_ = 1;
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;

  // Generation-stamp dedup for obstacles_near_segment (an obstacle spans
  // several cells and neighbourhoods overlap). Replaces a std::set per
  // call; mutable scratch keeps the query allocation-free after warmup.
  // Not thread-safe, like the rest of the simulation core.
  mutable std::vector<std::uint64_t> visit_stamp_;
  mutable std::uint64_t stamp_gen_ = 0;
  mutable std::vector<std::uint32_t> candidate_scratch_;
  /// Batch scratch: ray evaluation order + angular sort keys.
  mutable std::vector<std::uint32_t> batch_order_;
  mutable std::vector<double> batch_key_;
};

}  // namespace agrarsec::sim
