// Weather conditions affecting sensor performance (paper §III-D: AI and
// sensing validity across environmental conditions is a core validation
// challenge; the sensor models expose these factors explicitly).
#pragma once

#include <cstdint>
#include <string>

namespace agrarsec::sim {

enum class Weather : std::uint8_t { kClear = 0, kRain = 1, kFog = 2, kSnow = 3 };

[[nodiscard]] std::string_view weather_name(Weather weather);

/// Multiplier on the windthrow hazard rate (WorksiteConfig::
/// windthrow_rate_per_hour). Rain-soaked ground and snow loading both
/// raise the uprooting/stem-break rate; calm clear weather rarely fells
/// trees. Model constants, not literature values.
[[nodiscard]] double windthrow_weather_factor(Weather weather);

/// Multiplicative effect of weather on a sensor's effective range, and an
/// additive per-frame miss probability. Derived per sensor modality.
struct WeatherEffect {
  double range_factor = 1.0;
  double extra_miss_probability = 0.0;
};

}  // namespace agrarsec::sim
