#include "sim/human.h"

#include <cmath>
#include <numbers>

namespace agrarsec::sim {

Human::Human(HumanId id, std::string name, core::Vec2 position, core::Vec2 work_anchor,
             HumanConfig config, core::Rng rng)
    : id_(id), name_(std::move(name)), position_(position), work_anchor_(work_anchor),
      config_(config), rng_(rng) {}

void Human::pick_waypoint(core::Rng& rng) {
  const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double radius = config_.work_area_radius * std::sqrt(rng.next_double());
  waypoint_ = work_anchor_ + core::Vec2{std::cos(angle), std::sin(angle)} * radius;
}

void Human::step(core::SimDuration dt_ms, core::Rng& rng) {
  if (pause_remaining_ > 0) {
    pause_remaining_ -= dt_ms;
    return;
  }
  if (!waypoint_) pick_waypoint(rng);

  const core::Vec2 delta = *waypoint_ - position_;
  const double dist = delta.norm();
  const double step_len = config_.walk_speed_mps * static_cast<double>(dt_ms) /
                          core::kSecond;
  if (dist <= step_len) {
    position_ = *waypoint_;
    waypoint_.reset();
    if (rng.chance(config_.pause_probability)) {
      pause_remaining_ = static_cast<core::SimDuration>(
          rng.exponential(static_cast<double>(config_.pause_mean)));
    }
    return;
  }
  position_ = position_ + delta * (step_len / dist);
}

}  // namespace agrarsec::sim
