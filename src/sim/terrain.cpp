#include "sim/terrain.h"

#include <algorithm>
#include <cmath>

namespace agrarsec::sim {

Terrain::Terrain(core::Aabb bounds, std::vector<Obstacle> obstacles,
                 std::vector<Hill> hills)
    : bounds_(bounds), obstacles_(std::move(obstacles)), hills_(std::move(hills)) {
  for (const Hill& hill : hills_) hills_height_sum_ += hill.height_m;
  build_index();
}

Terrain Terrain::generate(const ForestConfig& config, core::Rng& rng) {
  const double area_ha =
      config.bounds.width() * config.bounds.height() / 10000.0;

  std::vector<Obstacle> obstacles;
  auto scatter = [&](ObstacleKind kind, double per_ha, double radius_mean,
                     double height_mean) {
    const auto count = rng.poisson(per_ha * area_ha);
    for (std::uint64_t i = 0; i < count; ++i) {
      Obstacle o;
      o.kind = kind;
      o.footprint.center = {rng.uniform(config.bounds.min.x, config.bounds.max.x),
                            rng.uniform(config.bounds.min.y, config.bounds.max.y)};
      o.footprint.radius = std::max(0.05, rng.normal(radius_mean, radius_mean * 0.3));
      o.height_m = std::max(0.3, rng.normal(height_mean, height_mean * 0.25));
      obstacles.push_back(o);
    }
  };
  scatter(ObstacleKind::kTree, config.trees_per_hectare, config.tree_radius_mean,
          config.tree_height_mean);
  scatter(ObstacleKind::kBoulder, config.boulders_per_hectare,
          config.boulder_radius_mean, config.boulder_height_mean);
  scatter(ObstacleKind::kBrush, config.brush_per_hectare, config.brush_radius_mean,
          config.brush_height_mean);

  std::vector<Hill> hills;
  for (std::size_t i = 0; i < config.hill_count; ++i) {
    Hill h;
    h.center = {rng.uniform(config.bounds.min.x, config.bounds.max.x),
                rng.uniform(config.bounds.min.y, config.bounds.max.y)};
    h.height_m = rng.uniform(0.5, config.hill_height_max);
    h.radius_m = std::max(10.0, rng.normal(config.hill_radius_mean,
                                           config.hill_radius_mean * 0.3));
    hills.push_back(h);
  }

  return Terrain{config.bounds, std::move(obstacles), std::move(hills)};
}

std::size_t Terrain::cell_slot(std::int64_t cx, std::int64_t cy) const {
  cx = std::clamp<std::int64_t>(cx - min_cx_, 0, width_ - 1);
  cy = std::clamp<std::int64_t>(cy - min_cy_, 0, height_ - 1);
  return static_cast<std::size_t>(cy) * static_cast<std::size_t>(width_) +
         static_cast<std::size_t>(cx);
}

void Terrain::build_index() {
  const auto cell_of = [this](double v) {
    return static_cast<std::int64_t>(std::floor(v / cell_size_));
  };

  // Grid extent: the worksite bounds, widened to any footprint that pokes
  // past them, so every obstacle has an in-range home cell.
  min_cx_ = cell_of(bounds_.min.x);
  min_cy_ = cell_of(bounds_.min.y);
  std::int64_t max_cx = cell_of(bounds_.max.x);
  std::int64_t max_cy = cell_of(bounds_.max.y);
  for (const Obstacle& o : obstacles_) {
    min_cx_ = std::min(min_cx_, cell_of(o.footprint.center.x - o.footprint.radius));
    min_cy_ = std::min(min_cy_, cell_of(o.footprint.center.y - o.footprint.radius));
    max_cx = std::max(max_cx, cell_of(o.footprint.center.x + o.footprint.radius));
    max_cy = std::max(max_cy, cell_of(o.footprint.center.y + o.footprint.radius));
  }
  width_ = max_cx - min_cx_ + 1;
  height_ = max_cy - min_cy_ + 1;

  const std::size_t cell_count =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  cell_start_.assign(cell_count + 1, 0);

  // Two-pass counting sort into the CSR arrays. Iterating obstacles in
  // index order in the fill pass leaves each cell's list ascending, which
  // obstacles_near_segment relies on for its ordered output.
  const auto each_cell = [&](const Obstacle& o, const auto& fn) {
    const std::int64_t lo_x = cell_of(o.footprint.center.x - o.footprint.radius);
    const std::int64_t hi_x = cell_of(o.footprint.center.x + o.footprint.radius);
    const std::int64_t lo_y = cell_of(o.footprint.center.y - o.footprint.radius);
    const std::int64_t hi_y = cell_of(o.footprint.center.y + o.footprint.radius);
    for (std::int64_t cy = lo_y; cy <= hi_y; ++cy) {
      for (std::int64_t cx = lo_x; cx <= hi_x; ++cx) {
        fn(cell_slot(cx, cy));
      }
    }
  };
  for (const Obstacle& o : obstacles_) {
    each_cell(o, [&](std::size_t s) { ++cell_start_[s + 1]; });
  }
  for (std::size_t s = 1; s <= cell_count; ++s) cell_start_[s] += cell_start_[s - 1];
  cell_items_.resize(cell_start_[cell_count]);
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::uint32_t i = 0; i < obstacles_.size(); ++i) {
    each_cell(obstacles_[i], [&](std::size_t s) { cell_items_[cursor[s]++] = i; });
  }

  visit_stamp_.assign(obstacles_.size(), 0);
  stamp_gen_ = 0;
}

double Terrain::ground_height(core::Vec2 p) const {
  double h = 0.0;
  for (const Hill& hill : hills_) {
    const double d2 = (p - hill.center).norm_sq();
    h += hill.height_m * std::exp(-d2 / (2.0 * hill.radius_m * hill.radius_m));
  }
  return h;
}

void Terrain::collect_segment_candidates(core::Vec2 a, core::Vec2 b) const {
  // Expand the traversal by visiting the 3x3 neighbourhood of each crossed
  // cell so obstacles whose footprints straddle cell borders are found.
  // Generation stamps dedup obstacles seen from several cells.
  const std::uint64_t gen = ++stamp_gen_;
  candidate_scratch_.clear();
  core::traverse_grid(a, b, cell_size_, [&](std::int64_t cx, std::int64_t cy) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::size_t s = cell_slot(cx + dx, cy + dy);
        for (std::uint32_t k = cell_start_[s]; k < cell_start_[s + 1]; ++k) {
          const std::uint32_t i = cell_items_[k];
          if (visit_stamp_[i] == gen) continue;
          visit_stamp_[i] = gen;
          candidate_scratch_.push_back(i);
        }
      }
    }
    return true;
  });

  // Ascending index order, matching the old std::set-based collection
  // (occlusion attribution returns the lowest-index blocker).
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end());
}

std::vector<const Obstacle*> Terrain::obstacles_near_segment(core::Vec2 a, core::Vec2 b,
                                                             double margin) const {
  collect_segment_candidates(a, b);
  std::vector<const Obstacle*> out;
  for (std::uint32_t i : candidate_scratch_) {
    const Obstacle& o = obstacles_[i];
    if (core::point_segment_distance(o.footprint.center, a, b) <=
        o.footprint.radius + margin) {
      out.push_back(&o);
    }
  }
  return out;
}

bool Terrain::segment_blocked(core::Vec2 a, core::Vec2 b, double margin) const {
  bool hit = false;
  core::traverse_grid(a, b, cell_size_, [&](std::int64_t cx, std::int64_t cy) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::size_t s = cell_slot(cx + dx, cy + dy);
        for (std::uint32_t k = cell_start_[s]; k < cell_start_[s + 1]; ++k) {
          const Obstacle& o = obstacles_[cell_items_[k]];
          if (core::point_segment_distance(o.footprint.center, a, b) <=
              o.footprint.radius + margin) {
            hit = true;
            return false;  // stop the traversal on the first blocker
          }
        }
      }
    }
    return true;
  });
  return hit;
}

Terrain::OcclusionCause Terrain::occlusion_cause_from(core::Vec2 from_xy,
                                                      double z_from,
                                                      core::Vec2 to_xy,
                                                      double to_agl) const {
  const double z_to = ground_height(to_xy) + to_agl;
  const double planar_len = core::distance(from_xy, to_xy);
  if (planar_len < 1e-9) return OcclusionCause::kNone;

  // Obstacle occlusion: an obstacle blocks the ray when the ray's height
  // at the crossing point is below the obstacle's top (ground + height).
  // Candidates come straight from the stamp walk (ascending index, exact
  // distance predicate applied inline) — no per-ray result vector.
  collect_segment_candidates(from_xy, to_xy);
  const core::Vec2 dir = (to_xy - from_xy) * (1.0 / planar_len);
  for (const std::uint32_t idx : candidate_scratch_) {
    const Obstacle& o = obstacles_[idx];
    if (core::point_segment_distance(o.footprint.center, from_xy, to_xy) >
        o.footprint.radius) {
      continue;
    }
    const double t = std::clamp((o.footprint.center - from_xy).dot(dir), 0.0,
                                planar_len);
    // Skip obstacles essentially at an endpoint (the observer/target's own
    // immediate surroundings do not self-occlude).
    if (t < 0.5 || t > planar_len - 0.5) continue;
    const double ray_z = z_from + (z_to - z_from) * (t / planar_len);
    const core::Vec2 at = from_xy + dir * t;
    const double top = ground_height(at) + o.height_m;
    if (ray_z < top) {
      switch (o.kind) {
        case ObstacleKind::kTree: return OcclusionCause::kTree;
        case ObstacleKind::kBoulder: return OcclusionCause::kBoulder;
        case ObstacleKind::kBrush: return OcclusionCause::kBrush;
      }
    }
  }

  // Terrain occlusion: sample the ground along the ray — unless the ray's
  // lowest endpoint already clears the summed hill amplitudes, in which
  // case no sample could come within 1e-9 of the ray (the lerp stays
  // within a few ulps of [min(z), max(z)], far inside that margin).
  if (std::min(z_from, z_to) >= hills_height_sum_) return OcclusionCause::kNone;
  constexpr double kSample = 5.0;
  const int samples = std::max(2, static_cast<int>(planar_len / kSample));
  for (int i = 1; i < samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const core::Vec2 at = from_xy + (to_xy - from_xy) * t;
    const double ray_z = z_from + (z_to - z_from) * t;
    if (ray_z < ground_height(at) - 1e-9) return OcclusionCause::kTerrain;
  }
  return OcclusionCause::kNone;
}

Terrain::OcclusionCause Terrain::occlusion_cause(core::Vec2 from_xy, double from_agl,
                                                 core::Vec2 to_xy,
                                                 double to_agl) const {
  return occlusion_cause_from(from_xy, ground_height(from_xy) + from_agl, to_xy,
                              to_agl);
}

void Terrain::occlusion_cause_batch(core::Vec2 from_xy, double from_agl,
                                    const LosTarget* targets, std::size_t count,
                                    OcclusionCause* out) const {
  if (count == 0) return;
  // One origin ground sample serves the whole bundle (same expression as
  // the per-ray path, so z_from is bit-identical).
  const double z_from = ground_height(from_xy) + from_agl;
  if (count == 1) {
    out[0] = occlusion_cause_from(from_xy, z_from, targets[0].to_xy,
                                  targets[0].to_agl);
    return;
  }

  // Evaluate in direction-sorted order: consecutive rays then sweep
  // adjacent corridors of the CSR grid, so the cell rows and obstacle
  // records a walk touches are still cache-hot for the next ray. Results
  // land at their original index; each ray's answer is independent of the
  // evaluation order, so the sort is invisible to callers.
  batch_order_.resize(count);
  batch_key_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch_order_[i] = static_cast<std::uint32_t>(i);
    const core::Vec2 d = targets[i].to_xy - from_xy;
    batch_key_[i] = std::atan2(d.y, d.x);
  }
  std::sort(batch_order_.begin(), batch_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return batch_key_[a] < batch_key_[b];
            });
  for (const std::uint32_t idx : batch_order_) {
    out[idx] = occlusion_cause_from(from_xy, z_from, targets[idx].to_xy,
                                    targets[idx].to_agl);
  }
}

void Terrain::occlusion_cause_batch(core::Vec2 from_xy, double from_agl,
                                    const std::vector<LosTarget>& targets,
                                    std::vector<OcclusionCause>& out) const {
  out.resize(targets.size());
  occlusion_cause_batch(from_xy, from_agl, targets.data(), targets.size(),
                        out.data());
}

bool Terrain::blocked(core::Vec2 p, double radius) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_size_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_size_));
  for (std::int64_t dy = -1; dy <= 1; ++dy) {
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      const std::size_t s = cell_slot(cx + dx, cy + dy);
      for (std::uint32_t k = cell_start_[s]; k < cell_start_[s + 1]; ++k) {
        const Obstacle& o = obstacles_[cell_items_[k]];
        if (core::distance(o.footprint.center, p) < o.footprint.radius + radius) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace agrarsec::sim
