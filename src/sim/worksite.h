// The partially-autonomous forestry worksite of the paper's Figure 1:
// autonomous forwarders cycling logs from harvest piles to a landing
// area, a manually-operated harvester producing piles, human workers, and
// an observation drone. The worksite owns the clock and steps all agents;
// the security/safety stacks hook in from outside via references.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/event_bus.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/time.h"
#include "sim/human.h"
#include "sim/machine.h"
#include "sim/pathfinding.h"
#include "sim/spatial_index.h"
#include "sim/terrain.h"
#include "sim/weather.h"

namespace agrarsec::sim {

/// A pile of cut logs awaiting transport. Exhausted piles are compacted
/// away, so positions within `piles()` are unstable; `id` is the stable
/// reference (the forwarder task state machine holds ids, never indices).
struct LogPile {
  core::Vec2 position;
  double volume_m3 = 0.0;
  std::uint64_t id = 0;
};

struct WorksiteConfig {
  ForestConfig forest;
  core::Vec2 landing_area{30, 30};
  double landing_radius = 15.0;
  core::SimDuration step = 100;          ///< ms
  Weather weather = Weather::kClear;
  double harvester_output_m3_per_min = 1.2;
  double pile_capacity_m3 = 7.0;
  core::SimDuration load_time = 90 * core::kSecond;
  core::SimDuration unload_time = 60 * core::kSecond;
  /// Separation statistics are streamed into a histogram covering
  /// [0, separation_tracking_m]; pairs farther apart than this are not
  /// safety-relevant and are not recorded (keeps the hot loop local).
  double separation_tracking_m = 50.0;
  /// Histogram resolution for close_encounters() queries (metres).
  double separation_bin_m = 0.1;
};

/// Forwarder mission state machine.
enum class ForwarderTask : std::uint8_t {
  kIdle = 0,
  kToPile,
  kLoading,
  kToLanding,
  kUnloading,
};

class Worksite {
 public:
  Worksite(WorksiteConfig config, std::uint64_t seed);

  // --- population ---
  MachineId add_forwarder(const std::string& name, core::Vec2 position,
                          MachineConfig config = {});
  MachineId add_harvester(const std::string& name, core::Vec2 position);
  MachineId add_drone(const std::string& name, core::Vec2 position,
                      double altitude_m = 40.0);
  HumanId add_worker(const std::string& name, core::Vec2 position,
                     core::Vec2 work_anchor, HumanConfig config = {});

  // --- access ---
  [[nodiscard]] const Terrain& terrain() const { return *terrain_; }
  [[nodiscard]] core::SimClock& clock() { return clock_; }
  [[nodiscard]] const core::SimClock& clock() const { return clock_; }
  [[nodiscard]] core::EventBus& bus() { return bus_; }
  [[nodiscard]] core::Rng& rng() { return rng_; }
  [[nodiscard]] Weather weather() const { return config_.weather; }
  void set_weather(Weather weather) { config_.weather = weather; }

  [[nodiscard]] std::vector<Machine*> machines();
  [[nodiscard]] std::vector<const Machine*> machines() const;
  /// O(1) id lookup (slot map; machines are never removed).
  [[nodiscard]] Machine* machine(MachineId id);
  [[nodiscard]] const Machine* machine(MachineId id) const;
  [[nodiscard]] std::vector<Human*> humans();
  [[nodiscard]] std::vector<const Human*> humans() const;
  [[nodiscard]] const Human* human(HumanId id) const;
  [[nodiscard]] const std::vector<LogPile>& piles() const { return piles_; }

  /// Humans within `radius` of `center` (exact Euclidean, boundary
  /// inclusive), in ascending id order — identical set and order to a
  /// brute-force scan over humans(). Backed by the uniform-grid index;
  /// this is the query perception and separation tracking run per step.
  [[nodiscard]] std::vector<const Human*> humans_within(core::Vec2 center,
                                                        double radius) const;

  /// Forwarder mission status (only meaningful for forwarders).
  [[nodiscard]] ForwarderTask task(MachineId id) const;

  /// Drone orbit: circles `center` at `radius`; recomputed each step so a
  /// moving anchor (the forwarder) is followed.
  void set_drone_orbit(MachineId drone, MachineId anchor, double radius);

  /// Obstacle-aware route between two points (cached JPS over the terrain
  /// grid); falls back to the straight line when planning fails.
  [[nodiscard]] std::deque<core::Vec2> plan_route(core::Vec2 from, core::Vec2 to) const;

  /// Routes `id` to `goal`, lazily: when the machine's current route was
  /// planned for a goal within its replan threshold and the remaining legs
  /// are still clear, the route is retargeted instead of re-planned.
  /// No-op for unknown ids.
  void route_machine(MachineId id, core::Vec2 goal);

  [[nodiscard]] const PathPlanner& planner() const { return *planner_; }
  /// Mutable planner access, e.g. to declare dynamic no-go regions
  /// (PathPlanner::set_region_blocked) which invalidate cached routes.
  [[nodiscard]] PathPlanner& planner() { return *planner_; }

  /// Advances one fixed step: harvester produces, piles spawn, forwarders
  /// run their task state machines, humans walk, drones orbit.
  void step();

  // --- outcome metrics ---
  /// One-stop snapshot of the worksite's outcome and hot-path counters,
  /// including the planner's route-cache/JPS statistics.
  struct Metrics {
    double delivered_m3 = 0.0;
    std::uint64_t completed_cycles = 0;
    double min_human_separation = 1e9;
    std::uint64_t separation_samples = 0;
    std::uint64_t route_reuses = 0;  ///< lazy re-plans avoided, fleet-wide
    PlannerStats planner;            ///< cache hits/misses/invalidations, JPS
  };
  [[nodiscard]] Metrics metrics() const;

  [[nodiscard]] double delivered_m3() const { return delivered_m3_; }
  [[nodiscard]] std::uint64_t completed_cycles() const { return completed_cycles_; }
  /// Minimum human–forwarder distance seen while the forwarder moved
  /// faster than 0.3 m/s (the safety-relevant exposure metric). Tracked
  /// within separation_tracking_m; 1e9 when no such pair was ever seen.
  [[nodiscard]] double min_human_separation() const { return min_separation_; }
  /// Count of recorded separation samples below `threshold_m`. Answered
  /// from the streaming histogram at separation_bin_m resolution
  /// (thresholds are rounded up to the next bin edge), O(bins) instead of
  /// a scan over every sample ever recorded.
  [[nodiscard]] std::uint64_t close_encounters(double threshold_m) const;
  /// Streaming moments (mean/stddev/min/max) over all separation samples.
  [[nodiscard]] const core::RunningStats& separation_stats() const {
    return separation_stats_;
  }
  [[nodiscard]] const core::Histogram& separation_histogram() const {
    return separation_hist_;
  }

 private:
  struct ForwarderState {
    ForwarderTask task = ForwarderTask::kIdle;
    std::optional<std::uint64_t> pile_id;  ///< stable id, survives compaction
    core::SimDuration action_remaining = 0;
  };
  struct DroneOrbit {
    MachineId anchor;
    double radius = 25.0;
    double phase = 0.0;
  };

  void step_harvester(Machine& harvester);
  /// route_machine body shared with the public id-based overload.
  void route_machine(Machine& machine, core::Vec2 goal);
  void step_forwarder(Machine& forwarder, ForwarderState& state);
  void step_drone(Machine& drone);
  /// Nearest pile with harvestable volume, by stable pile id. Exact
  /// (expanding-ring search over the pile grid; only live piles indexed).
  std::optional<std::uint64_t> nearest_pile(core::Vec2 from) const;
  /// Current slot of a pile id in piles_, or nullptr when exhausted.
  [[nodiscard]] LogPile* pile_by_id(std::uint64_t pile_id);
  [[nodiscard]] const LogPile* pile_by_id(std::uint64_t pile_id) const;
  /// Swap-and-pop removal of exhausted piles (volume < 0.5): the grid and
  /// slot map shrink with the site instead of growing without bound.
  void compact_piles();
  void record_separations();

  WorksiteConfig config_;
  core::Rng rng_;
  core::SimClock clock_;
  core::EventBus bus_;
  std::unique_ptr<Terrain> terrain_;
  std::unique_ptr<PathPlanner> planner_;

  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<Human>> humans_;
  std::vector<LogPile> piles_;
  std::unordered_map<std::uint64_t, ForwarderState> forwarder_states_;
  std::unordered_map<std::uint64_t, DroneOrbit> drone_orbits_;

  // Hot-loop lookup structures: id -> slot maps (machines/humans are
  // append-only; pile slots are fixed up on compaction) and uniform-grid
  // indexes for the per-step range queries.
  std::unordered_map<std::uint64_t, std::size_t> machine_slots_;
  std::unordered_map<std::uint64_t, std::size_t> human_slots_;
  std::unordered_map<std::uint64_t, std::size_t> pile_slots_;
  SpatialIndex human_index_;
  SpatialIndex pile_index_;
  std::uint64_t next_pile_id_ = 1;
  mutable std::vector<std::uint64_t> query_buffer_;

  IdAllocator<MachineId> machine_ids_;
  IdAllocator<HumanId> human_ids_;

  double harvester_accumulator_m3_ = 0.0;
  std::uint64_t route_reuses_ = 0;
  double delivered_m3_ = 0.0;
  std::uint64_t completed_cycles_ = 0;
  double min_separation_ = 1e9;
  core::RunningStats separation_stats_;
  core::Histogram separation_hist_;
};

}  // namespace agrarsec::sim
