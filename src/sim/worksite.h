// The partially-autonomous forestry worksite of the paper's Figure 1:
// autonomous forwarders cycling logs from harvest piles to a landing
// area, a manually-operated harvester producing piles, human workers, and
// an observation drone. The worksite owns the clock and steps all agents;
// the security/safety stacks hook in from outside via references.
//
// Parallel stepping (DESIGN.md §9): step() shards its per-entity work
// across a core::ThreadPool when WorksiteConfig::threads > 1, and is
// bit-identical for every thread count. The scheme is shard / fork /
// drain: per-entity phases run in parallel against const shared state,
// every entity owns an RNG stream forked once at spawn keyed by its id
// (core::Rng::fork_stream), and all shared side effects (event-bus
// publishes, planner calls, pile mutations, metric samples) are buffered
// per entity and drained serially in ascending slot (= id) order.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/event_bus.h"
#include "core/rng.h"
#include "core/stats.h"
#include "core/thread_pool.h"
#include "core/time.h"
#include "obs/telemetry.h"
#include "sim/human.h"
#include "sim/machine.h"
#include "sim/pathfinding.h"
#include "sim/spatial_index.h"
#include "sim/terrain.h"
#include "sim/weather.h"

namespace agrarsec::sim {

/// A pile of cut logs awaiting transport. Exhausted piles are compacted
/// away, so positions within `piles()` are unstable; `id` is the stable
/// reference (the forwarder task state machine holds ids, never indices).
struct LogPile {
  core::Vec2 position;
  double volume_m3 = 0.0;
  std::uint64_t id = 0;
};

/// Structure-of-arrays mirror of the machines' hot read state (DESIGN.md
/// §14). The entities in machines_ stay authoritative — external holders
/// of Machine& (SafetyMonitor) rely on pointer stability — but the phases
/// that only *read* poses at fleet scale (separation sampling, sensing,
/// zone tracking) stream these contiguous arrays instead of chasing one
/// heap allocation per entity. Values are bit-copies of the entity state,
/// refreshed every step after the last pose mutation, so consumers get
/// results identical to reading the entities. Indexed by machine slot.
struct MachineHotState {
  std::vector<double> x, y;
  std::vector<double> heading;
  std::vector<double> speed;
  std::vector<std::uint64_t> id;     ///< written at spawn, immutable
  std::vector<MachineKind> kind;     ///< written at spawn, immutable
  [[nodiscard]] std::size_t size() const { return x.size(); }
  [[nodiscard]] core::Vec2 position(std::size_t slot) const {
    return {x[slot], y[slot]};
  }
};

/// Structure-of-arrays mirror of the humans' hot read state, indexed by
/// human slot (= id - 1; humans are append-only).
struct HumanHotState {
  std::vector<double> x, y;
  std::vector<double> height;        ///< written at spawn, immutable
  std::vector<std::uint64_t> id;     ///< written at spawn, immutable
  [[nodiscard]] std::size_t size() const { return x.size(); }
  [[nodiscard]] core::Vec2 position(std::size_t slot) const {
    return {x[slot], y[slot]};
  }
};

/// Work-assignment policy for the parallel step phases (DESIGN.md §14).
enum class Scheduling : std::uint8_t {
  kStatic = 0,        ///< contiguous shard ranges, fixed per (n, threads)
  kWorkStealing = 1,  ///< chunked self-scheduling from step one
  /// Start static; switch the pool to work stealing permanently once the
  /// observed per-job busy imbalance stays high for a sustained window.
  /// Outcomes are assignment-invariant (effects are slot-buffered), so
  /// the timing-driven switch is unobservable in any deterministic
  /// export — only the wall-clock utilization profile changes.
  kAdaptive = 2,
};

struct WorksiteConfig {
  ForestConfig forest;
  core::Vec2 landing_area{30, 30};
  double landing_radius = 15.0;
  core::SimDuration step = 100;          ///< ms
  Weather weather = Weather::kClear;
  double harvester_output_m3_per_min = 1.2;
  double pile_capacity_m3 = 7.0;
  core::SimDuration load_time = 90 * core::kSecond;
  core::SimDuration unload_time = 60 * core::kSecond;
  /// Separation statistics are streamed into a histogram covering
  /// [0, separation_tracking_m]; pairs farther apart than this are not
  /// safety-relevant and are not recorded (keeps the hot loop local).
  double separation_tracking_m = 50.0;
  /// Histogram resolution for close_encounters() queries (metres).
  double separation_bin_m = 0.1;
  /// Also retain every separation sample in an exact core::SampleSet.
  /// close_encounters() then answers *any* threshold exactly instead of
  /// rounding up to the next histogram bin edge — audit-query precision
  /// at the cost of unbounded sample retention; leave off in long runs.
  bool exact_separation_samples = false;
  /// Worker shards for the per-entity phases of step(). 1 = serial
  /// (default), 0 = std::thread::hardware_concurrency(). Results are
  /// bit-identical for every value (the parity tests enforce this).
  std::size_t threads = 1;
  /// Shard-assignment policy for the parallel phases. Results are
  /// bit-identical for every value (and for any point the adaptive mode
  /// switches at); only wall-clock balance changes.
  Scheduling scheduling = Scheduling::kAdaptive;
  /// Windthrow hazards: expected events per simulated hour at weather
  /// factor 1 (scaled by windthrow_weather_factor; storms fell trees,
  /// clear days rarely do). 0 disables the model. Each event blocks a
  /// disc of windthrow_radius_m in every route planner (exercising the
  /// cache generation-invalidation path) and publishes
  /// "worksite/windthrow"; after windthrow_duration the debris is
  /// cleared and "worksite/windthrow-cleared" is published (0 = never).
  double windthrow_rate_per_hour = 0.0;
  double windthrow_radius_m = 12.0;
  core::SimDuration windthrow_duration = 10 * core::kMinute;
  /// Drone orbit targets are normally computed in the decide phase from
  /// the anchor's start-of-step pose — a deliberate one-step lag (see
  /// decide_drone). Setting this runs drones in a serial follower phase
  /// after the integrate barrier instead, so the orbit target tracks the
  /// anchor's *current* (post-step) pose. Default off: the lag is within
  /// orbit tolerance and the default trajectory is frozen by parity tests.
  bool drone_follow_post_integrate = false;
  /// Telemetry sink for the worksite's counters, step-phase spans and
  /// flight events. When null the worksite owns a private instance, so
  /// instrumentation is always live; inject a shared one (SecuredWorksite
  /// does) to merge the full stack into a single export. Must outlive the
  /// worksite.
  obs::Telemetry* telemetry = nullptr;
};

/// Forwarder mission state machine.
enum class ForwarderTask : std::uint8_t {
  kIdle = 0,
  kToPile,
  kLoading,
  kToLanding,
  kUnloading,
};

class Worksite {
 public:
  Worksite(WorksiteConfig config, std::uint64_t seed);

  // --- population ---
  MachineId add_forwarder(const std::string& name, core::Vec2 position,
                          MachineConfig config = {});
  MachineId add_harvester(const std::string& name, core::Vec2 position);
  MachineId add_drone(const std::string& name, core::Vec2 position,
                      double altitude_m = 40.0);
  HumanId add_worker(const std::string& name, core::Vec2 position,
                     core::Vec2 work_anchor, HumanConfig config = {});

  // --- access ---
  [[nodiscard]] const Terrain& terrain() const { return *terrain_; }
  [[nodiscard]] core::SimClock& clock() { return clock_; }
  [[nodiscard]] const core::SimClock& clock() const { return clock_; }
  [[nodiscard]] core::EventBus& bus() { return bus_; }
  [[nodiscard]] core::Rng& rng() { return rng_; }
  /// The telemetry this worksite instruments into (the injected one, or
  /// the privately owned fallback).
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }
  [[nodiscard]] Weather weather() const { return config_.weather; }
  void set_weather(Weather weather) { config_.weather = weather; }

  [[nodiscard]] std::vector<Machine*> machines();
  [[nodiscard]] std::vector<const Machine*> machines() const;
  /// O(1) id lookup (slot map; machines are never removed).
  [[nodiscard]] Machine* machine(MachineId id);
  [[nodiscard]] const Machine* machine(MachineId id) const;
  [[nodiscard]] std::vector<Human*> humans();
  [[nodiscard]] std::vector<const Human*> humans() const;
  [[nodiscard]] const Human* human(HumanId id) const;
  [[nodiscard]] const std::vector<LogPile>& piles() const { return piles_; }

  /// Humans within `radius` of `center` (exact Euclidean, boundary
  /// inclusive), in ascending id order — identical set and order to a
  /// brute-force scan over humans(). Backed by the uniform-grid index;
  /// this is the query perception and separation tracking run per step.
  [[nodiscard]] std::vector<const Human*> humans_within(core::Vec2 center,
                                                        double radius) const;

  /// Allocation-free variant of humans_within for the hot read paths:
  /// fills `out` with human *slots* (ascending, same set/order) for use
  /// against human_hot(). Serial contexts only (shares the worksite's
  /// query scratch, like humans_within).
  void humans_within_slots(core::Vec2 center, double radius,
                           std::vector<std::uint32_t>& out) const;

  /// SoA mirrors of the hot per-entity read state, valid from spawn and
  /// refreshed every step() after the last pose mutation (so between
  /// steps — where sensing and monitoring run — they match the entities
  /// bit-for-bit).
  [[nodiscard]] const MachineHotState& machine_hot() const { return machine_hot_; }
  [[nodiscard]] const HumanHotState& human_hot() const { return human_hot_; }

  /// Forwarder mission status (only meaningful for forwarders).
  [[nodiscard]] ForwarderTask task(MachineId id) const;

  /// Drone orbit: circles `center` at `radius`; recomputed each step so a
  /// moving anchor (the forwarder) is followed.
  void set_drone_orbit(MachineId drone, MachineId anchor, double radius);

  /// Obstacle-aware route between two points (cached JPS over the terrain
  /// grid at the default clearance); falls back to the straight line when
  /// planning fails.
  [[nodiscard]] std::deque<core::Vec2> plan_route(core::Vec2 from, core::Vec2 to) const;

  /// Routes `id` to `goal`, lazily: when the machine's current route was
  /// planned for a goal within its replan threshold and the remaining legs
  /// are still clear, the route is retargeted instead of re-planned.
  /// Planning uses the planner matching the machine's clearance (mixed
  /// drone/forwarder fleets never share a route cache). No-op for unknown
  /// ids.
  void route_machine(MachineId id, core::Vec2 goal);

  [[nodiscard]] const PathPlanner& planner() const { return *planner_; }
  /// Mutable default-clearance planner, e.g. for tests poking
  /// PathPlanner::set_region_blocked directly. Fleet-wide no-go regions
  /// should go through block_region(), which hits every clearance's
  /// planner instance.
  [[nodiscard]] PathPlanner& planner() { return *planner_; }

  /// Planner instance whose blocked grid is dilated for `clearance_m`
  /// (quantised to 0.1 m; lazily constructed). Machines with different
  /// clearances (drone vs forwarder) get separate instances and therefore
  /// separate route caches — a shared cache would serve a forwarder a
  /// drone-width route (ROADMAP item from PR 2).
  [[nodiscard]] PathPlanner& planner_for(double clearance_m);
  /// Planning clearance used for `machine` (body radius + margin).
  [[nodiscard]] static double machine_clearance(const Machine& machine);

  /// Declares/clears a no-go disc in *every* planner instance (all
  /// clearances), invalidating affected cached routes via the planners'
  /// generation counters. This is the hook dynamic hazards (windthrow,
  /// breakdowns, attacker-declared zones) drive.
  void block_region(core::Vec2 center, double radius, bool blocked);

  /// Advances one fixed step: harvester produces, piles spawn, forwarders
  /// run their task state machines, humans walk, drones orbit. With
  /// config.threads > 1 the per-entity phases run on the worksite's
  /// thread pool; outcomes are bit-identical for every thread count.
  void step();

  // --- outcome metrics ---
  /// One-stop snapshot of the worksite's outcome and hot-path counters,
  /// including the planners' route-cache/JPS statistics (summed over all
  /// clearance instances).
  struct Metrics {
    double delivered_m3 = 0.0;
    std::uint64_t completed_cycles = 0;
    double min_human_separation = 1e9;
    std::uint64_t separation_samples = 0;
    std::uint64_t route_reuses = 0;  ///< lazy re-plans avoided, fleet-wide
    std::uint64_t windthrow_events = 0;  ///< hazards spawned by the weather model
    PlannerStats planner;            ///< cache hits/misses/invalidations, JPS
  };
  [[nodiscard]] Metrics metrics() const;

  // Registry-backed views: the counters live in telemetry()'s registry
  // ("worksite.delivered_m3" etc.); these accessors are thin adapters.
  [[nodiscard]] double delivered_m3() const { return g_delivered_->value(); }
  [[nodiscard]] std::uint64_t completed_cycles() const { return c_cycles_->value(); }
  /// Minimum human–forwarder distance seen while the forwarder moved
  /// faster than 0.3 m/s (the safety-relevant exposure metric). Tracked
  /// within separation_tracking_m; 1e9 when no such pair was ever seen.
  [[nodiscard]] double min_human_separation() const { return min_separation_; }
  /// Count of recorded separation samples below `threshold_m`. Answered
  /// from the streaming histogram at separation_bin_m resolution
  /// (thresholds are rounded up to the next bin edge), O(bins) instead of
  /// a scan over every sample ever recorded — unless
  /// config.exact_separation_samples is set, in which case the retained
  /// sample set is scanned and the count is exact at any threshold.
  [[nodiscard]] std::uint64_t close_encounters(double threshold_m) const;
  /// Streaming moments (mean/stddev/min/max) over all separation samples.
  [[nodiscard]] const core::RunningStats& separation_stats() const {
    return separation_stats_;
  }
  [[nodiscard]] const core::Histogram& separation_histogram() const {
    return separation_hist_;
  }
  /// Retained samples (nullptr unless config.exact_separation_samples).
  [[nodiscard]] const core::SampleSet* separation_samples() const {
    return separation_exact_ ? &*separation_exact_ : nullptr;
  }

 private:
  struct ForwarderState {
    ForwarderTask task = ForwarderTask::kIdle;
    std::optional<std::uint64_t> pile_id;  ///< stable id, survives compaction
    core::SimDuration action_remaining = 0;
  };
  struct DroneOrbit {
    MachineId anchor;
    double radius = 25.0;
    double phase = 0.0;
  };
  /// A windthrow no-go disc awaiting clearance.
  struct ActiveHazard {
    core::Vec2 center;
    double radius = 0.0;
    core::SimTime until = 0;
  };

  /// Per-machine side-effect buffer: the decide phase runs on worker
  /// threads and must not touch shared state, so anything that publishes,
  /// plans, or mutates piles is recorded here and applied by the drain in
  /// ascending slot order. At most one action per machine per step (the
  /// forwarder FSM takes one branch), plus an optional pile spawn.
  struct MachineEffects {
    enum class Action : std::uint8_t {
      kNone = 0,
      kDispatch,     ///< idle -> to-pile: route + task event
      kRoutePlanned, ///< mid-task re-route through the planner
      kRouteDirect,  ///< short final approach, straight-line route
      kLoadCommit,   ///< load timer expired: take volume, transition
      kCycleCommit,  ///< unload timer expired: credit delivery, event
    };
    Action action = Action::kNone;
    core::Vec2 route_goal{};
    double unloaded_m3 = 0.0;
    std::optional<LogPile> spawn;  ///< harvester production (id assigned in drain)
  };

  // --- step phases (see step() for ordering) ---
  /// Serial: windthrow spawn/expiry against every planner.
  void step_weather_hazards();
  /// Parallel: per-machine FSM decisions into effects_[slot].
  void decide_machine(std::size_t slot, std::size_t shard);
  void decide_harvester(Machine& harvester, MachineEffects& fx);
  void decide_forwarder(Machine& forwarder, ForwarderState& state,
                        MachineEffects& fx);
  void decide_drone(Machine& drone);
  /// Serial: applies effects_ in ascending slot order — pile spawns and
  /// takes, planner routing, event-bus publishes, delivery accounting.
  void drain_machine_effects();
  void commit_load(Machine& forwarder, ForwarderState& state);
  /// Serial: streams the per-machine separation samples gathered by the
  /// parallel sampling pass into min/stats/histogram in slot order, so
  /// the floating-point accumulation order is thread-count-invariant.
  void drain_separation_samples();
  /// Post-integrate follower phase (only when
  /// config.drone_follow_post_integrate): decide + step every drone
  /// against the anchors' post-step poses. The pass is pure per-drone
  /// (own orbit state, own route; the slot-ordered effect buffer it
  /// would drain is empty), so it shards across the pool whenever no
  /// drone is anchored on another drone; a drone-on-drone anchor chain
  /// falls back to the serial ascending-slot walk, whose order the
  /// chained read depends on.
  void follow_drones();
  /// Serial: copies the entities' post-step poses into the SoA mirrors
  /// (contiguous writes, runs inside the index phase).
  void refresh_hot_state();

  /// Shared tail of the add_* spawners: slot bookkeeping, SoA append,
  /// drone work-list, parallel-buffer growth.
  MachineId register_machine(std::unique_ptr<Machine> machine);
  /// route_machine body shared with the public id-based overload.
  void route_machine(Machine& machine, core::Vec2 goal);
  /// Runs `fn(begin, end, shard)` over [0, n), on the pool when present.
  void parallel_over(std::size_t n, const core::ThreadPool::ShardFn& fn);
  /// Nearest pile with harvestable volume, by stable pile id. Exact
  /// (expanding-ring search over the pile grid; only live piles indexed).
  std::optional<std::uint64_t> nearest_pile(core::Vec2 from) const;
  /// Current slot of a pile id in piles_, or nullptr when exhausted.
  [[nodiscard]] LogPile* pile_by_id(std::uint64_t pile_id);
  [[nodiscard]] const LogPile* pile_by_id(std::uint64_t pile_id) const;
  /// Swap-and-pop removal of exhausted piles (volume < 0.5): the grid and
  /// slot map shrink with the site instead of growing without bound.
  void compact_piles();

  WorksiteConfig config_;
  std::uint64_t seed_ = 0;  ///< fork_stream root for per-entity streams
  core::Rng rng_;
  core::Rng hazard_rng_;  ///< windthrow stream, independent of entities
  core::SimClock clock_;
  core::EventBus bus_;
  std::unique_ptr<Terrain> terrain_;
  /// Route planners by quantised clearance (key = round(clearance * 10));
  /// planner_ points at the default-clearance instance. std::map so
  /// iteration (stat aggregation, block_region) is in a fixed order.
  std::map<long, std::unique_ptr<PathPlanner>> planners_;
  PathPlanner* planner_ = nullptr;
  std::unique_ptr<core::ThreadPool> pool_;

  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<Human>> humans_;
  std::vector<LogPile> piles_;
  std::unordered_map<std::uint64_t, ForwarderState> forwarder_states_;
  std::unordered_map<std::uint64_t, DroneOrbit> drone_orbits_;
  std::unordered_map<std::uint64_t, double> harvester_accum_m3_;

  // Hot-loop lookup structures: dense id -> slot arrays for machines and
  // humans (ids are allocated 1, 2, ... and entities are append-only, so
  // a flat vector beats hashing on every hot-path lookup; kNoSlot marks
  // never-allocated ids), a slot map for piles (pile ids grow without
  // bound while piles compact, so a dense array would leak), and
  // uniform-grid indexes for the per-step range queries.
  static constexpr std::size_t kNoSlot = ~std::size_t{0};
  std::vector<std::size_t> machine_slot_by_id_;
  std::vector<std::size_t> human_slot_by_id_;
  std::unordered_map<std::uint64_t, std::size_t> pile_slots_;
  /// Machine slots holding drones, ascending (the follower phase's work
  /// list).
  std::vector<std::size_t> drone_slots_;
  SpatialIndex human_index_;
  SpatialIndex pile_index_;
  std::uint64_t next_pile_id_ = 1;
  mutable std::vector<std::uint64_t> query_buffer_;

  // Parallel-phase buffers: per-machine effect/sample slots (disjoint
  // writes, drained serially) and per-shard query scratch (a shard runs
  // on exactly one thread per parallel_for).
  std::vector<MachineEffects> effects_;
  std::vector<std::vector<double>> separation_buffers_;
  std::vector<std::vector<std::uint64_t>> shard_query_;

  // SoA mirrors of the hot read state (see MachineHotState); refreshed by
  // refresh_hot_state() once per step.
  MachineHotState machine_hot_;
  HumanHotState human_hot_;

  // Adaptive-scheduling state: consecutive steps the pool's busy-time
  // imbalance EWMA stayed above threshold; once the streak is long
  // enough the pool switches to work stealing for good (sticky — the
  // imbalance signal itself degrades once stealing smooths it out).
  std::size_t imbalance_streak_ = 0;
  bool work_stealing_active_ = false;

  IdAllocator<MachineId> machine_ids_;
  IdAllocator<HumanId> human_ids_;

  std::deque<ActiveHazard> hazards_;

  // Telemetry: either the injected instance or the owned fallback; the
  // outcome counters that used to be plain members are registry
  // instruments now (handles resolved once in the constructor, O(1) on
  // the hot path). Flight events are recorded from serial contexts only.
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* c_steps_ = nullptr;
  obs::Counter* c_route_reuses_ = nullptr;
  obs::Counter* c_windthrow_ = nullptr;
  obs::Counter* c_cycles_ = nullptr;
  obs::Counter* c_sep_queries_ = nullptr;  ///< bumped per shard in the sampling phase
  obs::Gauge* g_delivered_ = nullptr;
  /// 1 once work stealing engaged ("wall." prefix: the switch point is
  /// timing-driven, so it must stay out of the deterministic export).
  obs::Gauge* g_work_stealing_ = nullptr;
  /// Separation distances (deterministic: fed in slot order by the serial
  /// drain) and step wall-time ("wall." prefix keeps it out of the
  /// deterministic export).
  obs::Histogram* h_separation_ = nullptr;
  obs::Histogram* h_step_wall_ = nullptr;
  obs::PhaseId ph_step_ = 0;
  obs::PhaseId ph_weather_ = 0;
  obs::PhaseId ph_decide_ = 0;
  obs::PhaseId ph_drain_ = 0;
  obs::PhaseId ph_integrate_ = 0;
  obs::PhaseId ph_index_ = 0;
  obs::PhaseId ph_separation_ = 0;
  obs::PhaseId ph_follow_ = 0;

  double min_separation_ = 1e9;
  core::RunningStats separation_stats_;
  core::Histogram separation_hist_;
  std::optional<core::SampleSet> separation_exact_;
};

}  // namespace agrarsec::sim
