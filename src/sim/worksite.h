// The partially-autonomous forestry worksite of the paper's Figure 1:
// autonomous forwarders cycling logs from harvest piles to a landing
// area, a manually-operated harvester producing piles, human workers, and
// an observation drone. The worksite owns the clock and steps all agents;
// the security/safety stacks hook in from outside via references.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "core/event_bus.h"
#include "core/rng.h"
#include "core/time.h"
#include "sim/human.h"
#include "sim/machine.h"
#include "sim/pathfinding.h"
#include "sim/terrain.h"
#include "sim/weather.h"

namespace agrarsec::sim {

/// A pile of cut logs awaiting transport.
struct LogPile {
  core::Vec2 position;
  double volume_m3 = 0.0;
};

struct WorksiteConfig {
  ForestConfig forest;
  core::Vec2 landing_area{30, 30};
  double landing_radius = 15.0;
  core::SimDuration step = 100;          ///< ms
  Weather weather = Weather::kClear;
  double harvester_output_m3_per_min = 1.2;
  double pile_capacity_m3 = 7.0;
  core::SimDuration load_time = 90 * core::kSecond;
  core::SimDuration unload_time = 60 * core::kSecond;
};

/// Forwarder mission state machine.
enum class ForwarderTask : std::uint8_t {
  kIdle = 0,
  kToPile,
  kLoading,
  kToLanding,
  kUnloading,
};

class Worksite {
 public:
  Worksite(WorksiteConfig config, std::uint64_t seed);

  // --- population ---
  MachineId add_forwarder(const std::string& name, core::Vec2 position,
                          MachineConfig config = {});
  MachineId add_harvester(const std::string& name, core::Vec2 position);
  MachineId add_drone(const std::string& name, core::Vec2 position,
                      double altitude_m = 40.0);
  HumanId add_worker(const std::string& name, core::Vec2 position,
                     core::Vec2 work_anchor, HumanConfig config = {});

  // --- access ---
  [[nodiscard]] const Terrain& terrain() const { return *terrain_; }
  [[nodiscard]] core::SimClock& clock() { return clock_; }
  [[nodiscard]] const core::SimClock& clock() const { return clock_; }
  [[nodiscard]] core::EventBus& bus() { return bus_; }
  [[nodiscard]] core::Rng& rng() { return rng_; }
  [[nodiscard]] Weather weather() const { return config_.weather; }
  void set_weather(Weather weather) { config_.weather = weather; }

  [[nodiscard]] std::vector<Machine*> machines();
  [[nodiscard]] std::vector<const Machine*> machines() const;
  [[nodiscard]] Machine* machine(MachineId id);
  [[nodiscard]] const Machine* machine(MachineId id) const;
  [[nodiscard]] std::vector<Human*> humans();
  [[nodiscard]] std::vector<const Human*> humans() const;
  [[nodiscard]] const std::vector<LogPile>& piles() const { return piles_; }

  /// Forwarder mission status (only meaningful for forwarders).
  [[nodiscard]] ForwarderTask task(MachineId id) const;

  /// Drone orbit: circles `center` at `radius`; recomputed each step so a
  /// moving anchor (the forwarder) is followed.
  void set_drone_orbit(MachineId drone, MachineId anchor, double radius);

  /// Obstacle-aware route between two points (A* over the terrain grid);
  /// falls back to the straight line when planning fails.
  [[nodiscard]] std::deque<core::Vec2> plan_route(core::Vec2 from, core::Vec2 to) const;

  [[nodiscard]] const PathPlanner& planner() const { return *planner_; }

  /// Advances one fixed step: harvester produces, piles spawn, forwarders
  /// run their task state machines, humans walk, drones orbit.
  void step();

  // --- outcome metrics ---
  [[nodiscard]] double delivered_m3() const { return delivered_m3_; }
  [[nodiscard]] std::uint64_t completed_cycles() const { return completed_cycles_; }
  /// Minimum human–forwarder distance seen while the forwarder moved
  /// faster than 0.3 m/s (the safety-relevant exposure metric).
  [[nodiscard]] double min_human_separation() const { return min_separation_; }
  [[nodiscard]] std::uint64_t close_encounters(double threshold_m) const;

 private:
  struct ForwarderState {
    ForwarderTask task = ForwarderTask::kIdle;
    std::optional<std::size_t> pile_index;
    core::SimDuration action_remaining = 0;
  };
  struct DroneOrbit {
    MachineId anchor;
    double radius = 25.0;
    double phase = 0.0;
  };

  void step_harvester(Machine& harvester);
  void step_forwarder(Machine& forwarder, ForwarderState& state);
  void step_drone(Machine& drone);
  std::optional<std::size_t> nearest_pile(core::Vec2 from) const;
  void record_separations();

  WorksiteConfig config_;
  core::Rng rng_;
  core::SimClock clock_;
  core::EventBus bus_;
  std::unique_ptr<Terrain> terrain_;
  std::unique_ptr<PathPlanner> planner_;

  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<Human>> humans_;
  std::vector<LogPile> piles_;
  std::unordered_map<std::uint64_t, ForwarderState> forwarder_states_;
  std::unordered_map<std::uint64_t, DroneOrbit> drone_orbits_;

  IdAllocator<MachineId> machine_ids_;
  IdAllocator<HumanId> human_ids_;

  double harvester_accumulator_m3_ = 0.0;
  double delivered_m3_ = 0.0;
  std::uint64_t completed_cycles_ = 0;
  double min_separation_ = 1e9;
  std::vector<double> separation_samples_;
};

}  // namespace agrarsec::sim
