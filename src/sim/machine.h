// Machine kinematics: forwarders (autonomous log carriers), manually
// operated harvesters, and observation drones. Machines follow waypoint
// routes; the safety stack can command e-stops and degraded (slow) modes,
// which is how cybersecurity events propagate into physical behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "core/geometry.h"
#include "core/rng.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::sim {

class PathPlanner;

enum class MachineKind : std::uint8_t { kForwarder = 0, kHarvester = 1, kDrone = 2 };

[[nodiscard]] std::string_view machine_kind_name(MachineKind kind);

enum class DriveMode : std::uint8_t {
  kNormal = 0,
  kDegraded = 1,   ///< reduced speed (e.g. lost collaborative safety cover)
  kStopped = 2,    ///< e-stop latched; needs explicit release
};

struct MachineConfig {
  double max_speed_mps = 4.0;        ///< forwarder off-road speed
  double degraded_speed_mps = 1.0;
  double turn_rate_rps = 0.6;        ///< yaw rate limit
  double brake_decel_mps2 = 3.0;     ///< e-stop deceleration
  double body_radius_m = 1.8;
  double sensor_height_m = 2.6;      ///< cab-top sensor mast
  double altitude_m = 0.0;           ///< >0 for drones (AGL)
  double load_capacity_m3 = 14.0;    ///< forwarder bunk volume
  /// Lazy re-planning: when a new goal lies within this distance of the
  /// goal the current route was planned for, the route is retargeted
  /// instead of re-planned (provided the remaining legs stay clear).
  double replan_threshold_m = 6.0;
};

class Machine {
 public:
  /// `rng` is the machine's private random stream. The worksite forks it
  /// once at spawn, keyed by the machine id (core::Rng::fork_stream), so
  /// the machine's RNG-dependent behaviour is independent of every other
  /// entity's draws — the invariant that lets the per-machine phase run
  /// on any thread without perturbing outcomes.
  Machine(MachineId id, MachineKind kind, std::string name, core::Vec2 position,
          MachineConfig config, core::Rng rng = core::Rng{0});

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] MachineKind kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] core::Vec2 position() const { return position_; }
  [[nodiscard]] double heading() const { return heading_; }
  [[nodiscard]] double speed() const { return speed_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }
  [[nodiscard]] DriveMode mode() const { return mode_; }
  /// Private per-machine random stream (see constructor).
  [[nodiscard]] core::Rng& rng() { return rng_; }

  /// Height of the machine's sensor origin above ground (drones: altitude).
  [[nodiscard]] double sensor_agl() const {
    return kind_ == MachineKind::kDrone ? config_.altitude_m : config_.sensor_height_m;
  }

  // --- routing ---
  void set_route(std::deque<core::Vec2> waypoints);
  /// Route with goal tracking: remembers the goal the route was planned
  /// for and the planner generation it was planned under, so later calls
  /// can lazily reuse it (try_reuse_route).
  void set_route(std::deque<core::Vec2> waypoints, core::Vec2 goal,
                 std::uint64_t planner_generation);
  void push_waypoint(core::Vec2 waypoint);
  [[nodiscard]] bool idle() const { return waypoints_.empty(); }
  [[nodiscard]] std::optional<core::Vec2> current_waypoint() const;

  /// Lazy re-planning: when the machine is mid-route towards a tracked
  /// goal and the new goal moved less than config().replan_threshold_m,
  /// the existing route is kept and only its final waypoint is retargeted.
  /// Reuse requires the planner's blocked-grid generation to match the one
  /// the route was planned under (any set_region_blocked since then
  /// declines wholesale — intermediate legs are not re-verified leg by
  /// leg), plus segment_clear on the two legs outside the planned
  /// polyline: pose->first waypoint and the retargeted final leg. Returns
  /// true when the route was reused (no re-plan needed).
  bool try_reuse_route(core::Vec2 goal, const PathPlanner& planner);

  /// Goal of the current tracked route (nullopt for untracked routes).
  [[nodiscard]] std::optional<core::Vec2> route_goal() const { return route_goal_; }
  /// How many times try_reuse_route avoided a full re-plan.
  [[nodiscard]] std::uint64_t route_reuses() const { return route_reuses_; }

  // --- safety interface ---
  /// Latches an emergency stop. `hard` brakes at brake_decel, otherwise
  /// a controlled stop at twice the braking distance.
  void emergency_stop(bool hard = true);
  void release_stop();
  void set_degraded(bool degraded);
  [[nodiscard]] bool stopped() const { return mode_ == DriveMode::kStopped; }

  // --- load (forwarders) ---
  void load_logs(double volume_m3);
  double unload_logs();  ///< empties the bunk, returns volume removed
  [[nodiscard]] double load_m3() const { return load_m3_; }
  [[nodiscard]] bool full() const { return load_m3_ >= config_.load_capacity_m3 - 1e-9; }

  /// Advances kinematics by dt. Returns distance travelled (m).
  double step(core::SimDuration dt_ms);

  /// Cumulative odometer (m).
  [[nodiscard]] double odometer() const { return odometer_; }

 private:
  MachineId id_;
  MachineKind kind_;
  std::string name_;
  core::Vec2 position_;
  double heading_ = 0.0;
  double speed_ = 0.0;
  MachineConfig config_;
  core::Rng rng_;
  DriveMode mode_ = DriveMode::kNormal;
  bool hard_braking_ = false;
  std::deque<core::Vec2> waypoints_;
  std::optional<core::Vec2> route_goal_;
  std::uint64_t route_generation_ = 0;  ///< planner generation of the route
  std::uint64_t route_reuses_ = 0;
  double load_m3_ = 0.0;
  double odometer_ = 0.0;

  static constexpr double kWaypointTolerance = 1.5;  // m
};

}  // namespace agrarsec::sim
