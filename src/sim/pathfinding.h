// Grid A* path planning over the terrain's obstacle field, with machine
// clearance and route decimation. Forwarders plan collision-free routes
// between piles and the landing; the mission-command attack surface
// ("forged-mission" in the threat catalogue) goes exactly through these
// planned routes.
#pragma once

#include <optional>
#include <vector>

#include "core/geometry.h"
#include "sim/terrain.h"

namespace agrarsec::sim {

struct PlannerConfig {
  double cell_size_m = 4.0;     ///< planning resolution
  double clearance_m = 2.0;     ///< machine body radius + margin
  double max_slope = 0.35;      ///< impassable ground gradient (rise/run)
  std::size_t max_expansions = 200000;  ///< search budget
};

class PathPlanner {
 public:
  PathPlanner(const Terrain& terrain, PlannerConfig config = {});

  /// Plans from `start` to `goal`. Start/goal are clamped into bounds and
  /// snapped off blocked cells to the nearest free cell when necessary.
  /// Returns a decimated waypoint list (first element past `start`,
  /// last == goal region center), or nullopt when unreachable within the
  /// search budget.
  [[nodiscard]] std::optional<std::vector<core::Vec2>> plan(core::Vec2 start,
                                                            core::Vec2 goal) const;

  /// True when the straight segment keeps clearance from all obstacles
  /// and stays on passable slopes (used for route smoothing).
  [[nodiscard]] bool segment_clear(core::Vec2 a, core::Vec2 b) const;

  /// Whether a planning cell is traversable.
  [[nodiscard]] bool cell_free(int cx, int cy) const;

  [[nodiscard]] const PlannerConfig& config() const { return config_; }

 private:
  [[nodiscard]] core::Vec2 cell_center(int cx, int cy) const;
  [[nodiscard]] std::pair<int, int> cell_of(core::Vec2 p) const;
  [[nodiscard]] std::optional<std::pair<int, int>> nearest_free(int cx, int cy) const;
  [[nodiscard]] std::vector<core::Vec2> smooth(const std::vector<core::Vec2>& raw) const;

  const Terrain& terrain_;
  PlannerConfig config_;
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> blocked_;  ///< precomputed occupancy
};

}  // namespace agrarsec::sim
