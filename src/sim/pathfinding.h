// Grid path planning over the terrain's obstacle field, with machine
// clearance and route decimation. Forwarders plan collision-free routes
// between piles and the landing; the mission-command attack surface
// ("forged-mission" in the threat catalogue) goes exactly through these
// planned routes.
//
// Hot-path design (PR 2): the planner is the worksite profile leader, so
// three layers keep repeated queries cheap while staying deterministic:
//
//  1. Route cache keyed on (start-cell, goal-cell). Plans are functions of
//     the snapped cells only (smoothing is anchored at cell centers, never
//     at the caller's exact pose), so a cached route is bit-identical to a
//     recomputed one — the cache can be disabled via PlannerConfig for
//     parity testing without changing any result.
//  2. Generation-based invalidation: mutating the blocked grid through
//     set_region_blocked() bumps a generation counter; cached entries
//     carry the generation they were planned under and are lazily evicted
//     on the first stale lookup.
//  3. Jump-point search (JPS) replaces vanilla A* expansion. On the
//     uniform-cost grid with corner cutting forbidden, JPS expands only
//     jump points (turning decisions), typically 10-50x fewer open-list
//     pops than A* for the same optimal octile-metric path.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/geometry.h"
#include "obs/metrics.h"
#include "sim/terrain.h"

namespace agrarsec::sim {

struct PlannerConfig {
  double cell_size_m = 4.0;     ///< planning resolution
  double clearance_m = 2.0;     ///< machine body radius + margin
  double max_slope = 0.35;      ///< impassable ground gradient (rise/run)
  std::size_t max_expansions = 200000;  ///< search budget (open-list pops)
  bool cache_enabled = true;    ///< route cache; off recomputes every plan
  /// Cache entry bound. When full the cache is cleared wholesale — a
  /// deterministic eviction policy, unlike LRU whose contents would depend
  /// on query history in ways that are hard to reason about in replays.
  std::size_t cache_capacity = 4096;
};

/// Planner observability counters, surfaced through Worksite::Metrics.
struct PlannerStats {
  std::uint64_t plans = 0;           ///< plan() calls
  std::uint64_t cache_hits = 0;      ///< served from cache, current generation
  std::uint64_t cache_misses = 0;    ///< searched (includes cache-disabled plans)
  std::uint64_t invalidations = 0;   ///< stale-generation entries evicted
  std::uint64_t jps_expansions = 0;  ///< jump points popped from the open list
};

class PathPlanner {
 public:
  PathPlanner(const Terrain& terrain, PlannerConfig config = {});

  /// Plans from `start` to `goal`. Start/goal are clamped into bounds and
  /// snapped off blocked cells to the nearest free cell when necessary.
  /// Returns a decimated waypoint list (first element past the start cell,
  /// last == goal region center), or nullopt when unreachable within the
  /// search budget. The route depends only on the snapped start/goal cells
  /// and the blocked-grid generation, which is what makes it cacheable —
  /// except that when the pose->first-waypoint leg is not segment_clear
  /// (e.g. the pose was snapped off a blocked cell), the start-cell center
  /// is prepended so the first driven leg follows the verified polyline.
  [[nodiscard]] std::optional<std::vector<core::Vec2>> plan(core::Vec2 start,
                                                            core::Vec2 goal) const;

  /// True when the straight segment keeps clearance from all obstacles
  /// and stays on passable slopes (used for route smoothing).
  [[nodiscard]] bool segment_clear(core::Vec2 a, core::Vec2 b) const;

  /// Whether a planning cell is traversable.
  [[nodiscard]] bool cell_free(int cx, int cy) const;

  /// Marks (blocked=true) or frees every planning cell whose center lies
  /// within `radius` of `center` — the mutation hook for dynamic hazards
  /// (windthrow, machine breakdowns, declared no-go zones). Bumps the grid
  /// generation when any cell actually changes, lazily invalidating every
  /// cached route. Freeing cells only frees what the disc covers; cells
  /// blocked by the underlying terrain are re-derived, not overridden.
  void set_region_blocked(core::Vec2 center, double radius, bool blocked);

  /// Blocked-grid generation; bumped by set_region_blocked.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  [[nodiscard]] const PlannerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
  [[nodiscard]] const PlannerConfig& config() const { return config_; }

  /// Mirrors every PlannerStats increment into registry counters
  /// ("planner.plans", "planner.cache_hits", ...), so a shared telemetry
  /// export always carries live planner numbers (summed over every
  /// instance wired to the same registry). nullptr detaches. The registry
  /// must outlive the planner; plan() is called from serial contexts only.
  void set_telemetry(obs::Registry* registry);

 private:
  struct CacheEntry {
    std::uint64_t generation = 0;
    bool reachable = false;
    std::vector<core::Vec2> route;
  };

  [[nodiscard]] core::Vec2 cell_center(int cx, int cy) const;
  [[nodiscard]] std::pair<int, int> cell_of(core::Vec2 p) const;
  [[nodiscard]] std::optional<std::pair<int, int>> nearest_free(int cx, int cy) const;
  [[nodiscard]] std::vector<core::Vec2> smooth(const std::vector<core::Vec2>& raw) const;
  /// Octile-metric shortest cell path via jump-point search, expanded back
  /// to the full per-cell polyline, then smoothed. Pure function of the
  /// cells and the blocked grid. `budget_exhausted` is set when a nullopt
  /// return means the expansion budget ran out rather than true
  /// unreachability — such failures must not be cached.
  [[nodiscard]] std::optional<std::vector<core::Vec2>> search(int start_cx, int start_cy,
                                                              int goal_cx, int goal_cy,
                                                              bool& budget_exhausted) const;
  /// Jump from (x,y) (already stepped once from its predecessor) along
  /// direction (dx,dy). Returns the next jump point or nullopt when the
  /// ray dead-ends. Corner cutting is forbidden: diagonal travel requires
  /// both orthogonally adjacent cells free.
  [[nodiscard]] std::optional<std::pair<int, int>> jump(int x, int y, int dx, int dy,
                                                        int goal_x, int goal_y) const;
  /// Recompute a cell's blocked flag from terrain + slope (construction
  /// rule), used when set_region_blocked frees a region.
  [[nodiscard]] bool terrain_blocked(int cx, int cy) const;

  const Terrain& terrain_;
  PlannerConfig config_;
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> blocked_;  ///< precomputed occupancy
  std::uint64_t generation_ = 0;

  // Route cache: (start_idx << 32 | goal_idx) -> generation-stamped route.
  // Mutable: plan() is logically const, the cache and counters are
  // bookkeeping (same convention as Terrain's query scratch).
  mutable std::unordered_map<std::uint64_t, CacheEntry> cache_;
  mutable PlannerStats stats_;

  // Optional registry mirrors (see set_telemetry); null when detached.
  obs::Counter* c_plans_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_invalidations_ = nullptr;
  obs::Counter* c_jps_expansions_ = nullptr;
};

}  // namespace agrarsec::sim
