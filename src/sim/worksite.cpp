#include "sim/worksite.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace agrarsec::sim {

namespace {
std::string_view task_name(ForwarderTask task) {
  switch (task) {
    case ForwarderTask::kIdle: return "idle";
    case ForwarderTask::kToPile: return "to-pile";
    case ForwarderTask::kLoading: return "loading";
    case ForwarderTask::kToLanding: return "to-landing";
    case ForwarderTask::kUnloading: return "unloading";
  }
  return "?";
}

/// Grid cell for the human/pile indexes: half the dominant query radius
/// (perception 40-90 m, separation tracking 50 m) keeps the candidate
/// sets tight without inflating the cell array.
constexpr double kIndexCellM = 25.0;

/// Piles below this volume are exhausted: invisible to dispatch and
/// compacted out of piles_ at the end of the step.
constexpr double kPileExhaustedM3 = 0.5;

std::size_t separation_bins(const WorksiteConfig& config) {
  const double range = std::max(config.separation_tracking_m, 1e-6);
  const double bin = std::max(config.separation_bin_m, 1e-6);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(range / bin)));
}
}  // namespace

std::string_view weather_name(Weather weather) {
  switch (weather) {
    case Weather::kClear: return "clear";
    case Weather::kRain: return "rain";
    case Weather::kFog: return "fog";
    case Weather::kSnow: return "snow";
  }
  return "?";
}

Worksite::Worksite(WorksiteConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      clock_(config.step),
      human_index_(config.forest.bounds, kIndexCellM),
      pile_index_(config.forest.bounds, kIndexCellM),
      separation_hist_(0.0, std::max(config.separation_tracking_m, 1e-6),
                       separation_bins(config)) {
  core::Rng terrain_rng = rng_.fork(0x7e44a1);
  terrain_ = std::make_unique<Terrain>(Terrain::generate(config_.forest, terrain_rng));
  planner_ = std::make_unique<PathPlanner>(*terrain_);
}

std::deque<core::Vec2> Worksite::plan_route(core::Vec2 from, core::Vec2 to) const {
  if (auto path = planner_->plan(from, to)) {
    return std::deque<core::Vec2>(path->begin(), path->end());
  }
  return {to};
}

void Worksite::route_machine(Machine& machine, core::Vec2 goal) {
  if (machine.try_reuse_route(goal, *planner_)) {
    ++route_reuses_;
    return;
  }
  machine.set_route(plan_route(machine.position(), goal), goal,
                    planner_->generation());
}

void Worksite::route_machine(MachineId id, core::Vec2 goal) {
  if (Machine* m = machine(id)) route_machine(*m, goal);
}

MachineId Worksite::add_forwarder(const std::string& name, core::Vec2 position,
                                  MachineConfig config) {
  const MachineId id = machine_ids_.next();
  machine_slots_[id.value()] = machines_.size();
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kForwarder, name, position, config));
  forwarder_states_[id.value()] = ForwarderState{};
  return id;
}

MachineId Worksite::add_harvester(const std::string& name, core::Vec2 position) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 1.5;  // harvesters crawl while working
  machine_slots_[id.value()] = machines_.size();
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kHarvester, name, position, config));
  return id;
}

MachineId Worksite::add_drone(const std::string& name, core::Vec2 position,
                              double altitude_m) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 12.0;
  config.turn_rate_rps = 2.5;
  config.altitude_m = altitude_m;
  config.body_radius_m = 0.4;
  machine_slots_[id.value()] = machines_.size();
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kDrone, name, position, config));
  return id;
}

HumanId Worksite::add_worker(const std::string& name, core::Vec2 position,
                             core::Vec2 work_anchor, HumanConfig config) {
  const HumanId id = human_ids_.next();
  human_slots_[id.value()] = humans_.size();
  humans_.push_back(std::make_unique<Human>(id, name, position, work_anchor, config));
  human_index_.insert(id.value(), position);
  return id;
}

std::vector<Machine*> Worksite::machines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<const Machine*> Worksite::machines() const {
  std::vector<const Machine*> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m.get());
  return out;
}

Machine* Worksite::machine(MachineId id) {
  const auto it = machine_slots_.find(id.value());
  return it == machine_slots_.end() ? nullptr : machines_[it->second].get();
}

const Machine* Worksite::machine(MachineId id) const {
  const auto it = machine_slots_.find(id.value());
  return it == machine_slots_.end() ? nullptr : machines_[it->second].get();
}

std::vector<Human*> Worksite::humans() {
  std::vector<Human*> out;
  out.reserve(humans_.size());
  for (auto& h : humans_) out.push_back(h.get());
  return out;
}

std::vector<const Human*> Worksite::humans() const {
  std::vector<const Human*> out;
  out.reserve(humans_.size());
  for (const auto& h : humans_) out.push_back(h.get());
  return out;
}

const Human* Worksite::human(HumanId id) const {
  const auto it = human_slots_.find(id.value());
  return it == human_slots_.end() ? nullptr : humans_[it->second].get();
}

std::vector<const Human*> Worksite::humans_within(core::Vec2 center,
                                                  double radius) const {
  human_index_.query_radius(center, radius, query_buffer_);
  std::vector<const Human*> out;
  out.reserve(query_buffer_.size());
  // Ascending id == insertion order, so downstream per-candidate RNG
  // consumption matches a brute-force scan over humans() exactly.
  for (const std::uint64_t id : query_buffer_) {
    out.push_back(humans_[human_slots_.at(id)].get());
  }
  return out;
}

ForwarderTask Worksite::task(MachineId id) const {
  const auto it = forwarder_states_.find(id.value());
  return it == forwarder_states_.end() ? ForwarderTask::kIdle : it->second.task;
}

void Worksite::set_drone_orbit(MachineId drone, MachineId anchor, double radius) {
  drone_orbits_[drone.value()] = DroneOrbit{anchor, radius, 0.0};
}

std::optional<std::uint64_t> Worksite::nearest_pile(core::Vec2 from) const {
  // Only live piles are in the grid, so no volume filter is needed here.
  return pile_index_.nearest(from);
}

LogPile* Worksite::pile_by_id(std::uint64_t pile_id) {
  const auto it = pile_slots_.find(pile_id);
  return it == pile_slots_.end() ? nullptr : &piles_[it->second];
}

const LogPile* Worksite::pile_by_id(std::uint64_t pile_id) const {
  const auto it = pile_slots_.find(pile_id);
  return it == pile_slots_.end() ? nullptr : &piles_[it->second];
}

void Worksite::compact_piles() {
  for (std::size_t i = 0; i < piles_.size();) {
    if (piles_[i].volume_m3 >= kPileExhaustedM3) {
      ++i;
      continue;
    }
    const std::uint64_t dead = piles_[i].id;
    pile_index_.remove(dead);
    pile_slots_.erase(dead);
    piles_[i] = piles_.back();
    piles_.pop_back();
    if (i < piles_.size()) pile_slots_[piles_[i].id] = i;
  }
}

void Worksite::step_harvester(Machine& harvester) {
  // The harvester fells and processes continuously; every
  // pile_capacity_m3 produced, a new pile appears beside it.
  const double per_step = config_.harvester_output_m3_per_min *
                          static_cast<double>(config_.step) / core::kMinute;
  harvester_accumulator_m3_ += per_step;
  if (harvester_accumulator_m3_ >= config_.pile_capacity_m3) {
    harvester_accumulator_m3_ -= config_.pile_capacity_m3;
    const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
    LogPile pile;
    pile.id = next_pile_id_++;
    pile.position = harvester.position() +
                    core::Vec2{std::cos(angle), std::sin(angle)} * 6.0;
    pile.position = terrain_->bounds().clamp(pile.position);
    pile.volume_m3 = config_.pile_capacity_m3;
    pile_slots_[pile.id] = piles_.size();
    if (pile.volume_m3 >= kPileExhaustedM3) {
      pile_index_.insert(pile.id, pile.position);
    }
    piles_.push_back(pile);
    bus_.publish({"worksite/pile", "volume=" + std::to_string(pile.volume_m3),
                  harvester.id().value(), clock_.now()});
  }

  // Slowly advance the harvester through the stand.
  if (harvester.idle()) {
    const core::Vec2 target{
        rng_.uniform(terrain_->bounds().min.x + 20, terrain_->bounds().max.x - 20),
        rng_.uniform(terrain_->bounds().min.y + 20, terrain_->bounds().max.y - 20)};
    harvester.push_waypoint(target);
  }
}

void Worksite::step_forwarder(Machine& forwarder, ForwarderState& state) {
  switch (state.task) {
    case ForwarderTask::kIdle: {
      const auto pile = nearest_pile(forwarder.position());
      if (pile) {
        state.pile_id = pile;
        state.task = ForwarderTask::kToPile;
        route_machine(forwarder, pile_by_id(*pile)->position);
        bus_.publish({"forwarder/task", std::string("task=") +
                          std::string(task_name(state.task)),
                      forwarder.id().value(), clock_.now()});
      }
      break;
    }
    case ForwarderTask::kToPile: {
      const LogPile* pile = state.pile_id ? pile_by_id(*state.pile_id) : nullptr;
      if (pile == nullptr || pile->volume_m3 < kPileExhaustedM3) {
        state.task = ForwarderTask::kIdle;
        break;
      }
      const core::Vec2 pile_pos = pile->position;
      const double pile_dist = core::distance(forwarder.position(), pile_pos);
      if (pile_dist < 4.0) {
        state.task = ForwarderTask::kLoading;
        state.action_remaining = config_.load_time;
      } else if (forwarder.idle()) {
        // Piles drop next to the harvester, frequently inside planner-
        // blocked cells; once close, crawl the final approach straight
        // (the machine threads between stems at walking pace in reality).
        if (pile_dist < 25.0) {
          forwarder.set_route({pile_pos}, pile_pos, planner_->generation());
        } else {
          route_machine(forwarder, pile_pos);
        }
      }
      break;
    }
    case ForwarderTask::kLoading: {
      if (forwarder.stopped()) break;  // e-stop pauses work
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        LogPile* pile = state.pile_id ? pile_by_id(*state.pile_id) : nullptr;
        if (pile == nullptr) {  // another forwarder exhausted it mid-wait
          state.task = ForwarderTask::kIdle;
          break;
        }
        const double take = std::min(
            pile->volume_m3, forwarder.config().load_capacity_m3 - forwarder.load_m3());
        pile->volume_m3 -= take;
        forwarder.load_logs(take);
        if (pile->volume_m3 < kPileExhaustedM3) {
          // Exhausted: hide from dispatch now, compacted at end of step.
          pile_index_.remove(pile->id);
        }
        if (forwarder.full() || !nearest_pile(forwarder.position())) {
          state.task = ForwarderTask::kToLanding;
          route_machine(forwarder, config_.landing_area);
        } else {
          state.task = ForwarderTask::kIdle;
        }
      }
      break;
    }
    case ForwarderTask::kToLanding: {
      const double landing_dist =
          core::distance(forwarder.position(), config_.landing_area);
      if (landing_dist < config_.landing_radius) {
        state.task = ForwarderTask::kUnloading;
        state.action_remaining = config_.unload_time;
      } else if (forwarder.idle()) {
        if (landing_dist < config_.landing_radius + 20.0) {
          forwarder.set_route({config_.landing_area}, config_.landing_area,
                              planner_->generation());
        } else {
          route_machine(forwarder, config_.landing_area);
        }
      }
      break;
    }
    case ForwarderTask::kUnloading: {
      if (forwarder.stopped()) break;
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        delivered_m3_ += forwarder.unload_logs();
        ++completed_cycles_;
        state.task = ForwarderTask::kIdle;
        bus_.publish({"forwarder/cycle",
                      "delivered=" + std::to_string(delivered_m3_),
                      forwarder.id().value(), clock_.now()});
      }
      break;
    }
  }
}

void Worksite::step_drone(Machine& drone) {
  const auto it = drone_orbits_.find(drone.id().value());
  if (it == drone_orbits_.end()) return;
  DroneOrbit& orbit = it->second;
  const Machine* anchor = machine(orbit.anchor);
  if (anchor == nullptr) return;

  orbit.phase += 0.35 * static_cast<double>(config_.step) / core::kSecond;
  const core::Vec2 target =
      anchor->position() +
      core::Vec2{std::cos(orbit.phase), std::sin(orbit.phase)} * orbit.radius;
  drone.set_route({target});
}

void Worksite::record_separations() {
  const double radius = config_.separation_tracking_m;
  for (const auto& m : machines_) {
    if (m->kind() != MachineKind::kForwarder) continue;
    if (m->speed() < 0.3) continue;
    human_index_.query_radius(m->position(), radius, query_buffer_);
    for (const std::uint64_t id : query_buffer_) {
      const Human& h = *humans_[human_slots_.at(id)];
      const double d = core::distance(m->position(), h.position());
      min_separation_ = std::min(min_separation_, d);
      separation_stats_.add(d);
      separation_hist_.add(d);
    }
  }
}

std::uint64_t Worksite::close_encounters(double threshold_m) const {
  if (threshold_m <= 0.0) return 0;
  // Bin counts up to the threshold (rounded up to the next bin edge),
  // plus the overflow bucket when the threshold exceeds the tracked range.
  std::uint64_t n = separation_hist_.underflow();
  for (std::size_t i = 0; i < separation_hist_.bins(); ++i) {
    if (separation_hist_.bin_low(i) >= threshold_m) break;
    n += separation_hist_.bin_count(i);
  }
  if (threshold_m > config_.separation_tracking_m) n += separation_hist_.overflow();
  return n;
}

Worksite::Metrics Worksite::metrics() const {
  Metrics m;
  m.delivered_m3 = delivered_m3_;
  m.completed_cycles = completed_cycles_;
  m.min_human_separation = min_separation_;
  m.separation_samples = separation_stats_.count();
  m.route_reuses = route_reuses_;
  m.planner = planner_->stats();
  return m;
}

void Worksite::step() {
  clock_.tick();

  for (auto& m : machines_) {
    switch (m->kind()) {
      case MachineKind::kHarvester:
        step_harvester(*m);
        break;
      case MachineKind::kForwarder:
        step_forwarder(*m, forwarder_states_[m->id().value()]);
        break;
      case MachineKind::kDrone:
        step_drone(*m);
        break;
    }
    m->step(config_.step);
  }
  for (auto& h : humans_) {
    h->step(config_.step, rng_);
    human_index_.update(h->id().value(), h->position());
  }
  compact_piles();
  record_separations();
}

}  // namespace agrarsec::sim
