#include "sim/worksite.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace agrarsec::sim {

namespace {
std::string_view task_name(ForwarderTask task) {
  switch (task) {
    case ForwarderTask::kIdle: return "idle";
    case ForwarderTask::kToPile: return "to-pile";
    case ForwarderTask::kLoading: return "loading";
    case ForwarderTask::kToLanding: return "to-landing";
    case ForwarderTask::kUnloading: return "unloading";
  }
  return "?";
}

/// Grid cell for the human/pile indexes: half the dominant query radius
/// (perception 40-90 m, separation tracking 50 m) keeps the candidate
/// sets tight without inflating the cell array.
constexpr double kIndexCellM = 25.0;

/// Piles below this volume are exhausted: invisible to dispatch and
/// compacted out of piles_ at the end of the step.
constexpr double kPileExhaustedM3 = 0.5;

/// Planning clearance = machine body radius + this margin. The default
/// MachineConfig (body 1.8 m) lands exactly on the default
/// PlannerConfig::clearance_m of 2.0 m, so uniform forwarder fleets keep
/// using the default planner instance and its warm cache.
constexpr double kClearanceMarginM = 0.2;

/// fork_stream domains for the per-entity streams: machines, humans and
/// the weather-hazard stream must never collide even for equal ids.
constexpr std::uint64_t kMachineStreamDomain = 0x4D41434821ULL;
constexpr std::uint64_t kHumanStreamDomain = 0x48554D414EULL;
constexpr std::uint64_t kWeatherStreamDomain = 0x57454154ULL;

std::size_t separation_bins(const WorksiteConfig& config) {
  const double range = std::max(config.separation_tracking_m, 1e-6);
  const double bin = std::max(config.separation_bin_m, 1e-6);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(range / bin)));
}

long clearance_key(double clearance_m) {
  return std::lround(std::max(clearance_m, 0.0) * 10.0);
}
}  // namespace

std::string_view weather_name(Weather weather) {
  switch (weather) {
    case Weather::kClear: return "clear";
    case Weather::kRain: return "rain";
    case Weather::kFog: return "fog";
    case Weather::kSnow: return "snow";
  }
  return "?";
}

double windthrow_weather_factor(Weather weather) {
  switch (weather) {
    case Weather::kClear: return 0.25;
    case Weather::kRain: return 1.0;
    case Weather::kFog: return 0.5;
    case Weather::kSnow: return 1.5;
  }
  return 1.0;
}

Worksite::Worksite(WorksiteConfig config, std::uint64_t seed)
    : config_(config),
      seed_(seed),
      rng_(seed),
      hazard_rng_(core::Rng::fork_stream(seed, kWeatherStreamDomain, 0)),
      clock_(config.step),
      human_index_(config.forest.bounds, kIndexCellM),
      pile_index_(config.forest.bounds, kIndexCellM),
      separation_hist_(0.0, std::max(config.separation_tracking_m, 1e-6),
                       separation_bins(config)) {
  // Telemetry first: the planners and the pool observer hang off it.
  if (config_.telemetry != nullptr) {
    telemetry_ = config_.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<obs::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  obs::Registry& reg = telemetry_->registry();
  c_steps_ = &reg.counter("worksite.steps");
  c_route_reuses_ = &reg.counter("worksite.route_reuses");
  c_windthrow_ = &reg.counter("worksite.windthrow_events");
  c_cycles_ = &reg.counter("worksite.completed_cycles");
  c_sep_queries_ = &reg.counter("worksite.separation_queries");
  g_delivered_ = &reg.gauge("worksite.delivered_m3");
  g_work_stealing_ = &reg.gauge("wall.worksite_work_stealing");
  // Coarse export view of the separation distribution (the full-resolution
  // core::Histogram stays the close_encounters() source); the step
  // wall-time histogram is excluded from the deterministic export by its
  // "wall." prefix.
  h_separation_ = &reg.histogram("worksite.separation_m", 0.0,
                                 std::max(config_.separation_tracking_m, 1e-6), 25);
  h_step_wall_ = &reg.histogram("wall.worksite_step_us", 0.0, 100000.0, 20);
  obs::Tracer& tracer = telemetry_->tracer();
  ph_step_ = tracer.phase("worksite.step");
  ph_weather_ = tracer.phase("worksite.weather");
  ph_decide_ = tracer.phase("worksite.decide");
  ph_drain_ = tracer.phase("worksite.drain");
  ph_integrate_ = tracer.phase("worksite.integrate");
  ph_index_ = tracer.phase("worksite.index");
  ph_separation_ = tracer.phase("worksite.separation");
  ph_follow_ = tracer.phase("worksite.follow");
  obs::wire_event_bus(bus_, *telemetry_);

  core::Rng terrain_rng = rng_.fork(0x7e44a1);
  terrain_ = std::make_unique<Terrain>(Terrain::generate(config_.forest, terrain_rng));

  PlannerConfig planner_config;
  auto base = std::make_unique<PathPlanner>(*terrain_, planner_config);
  base->set_telemetry(&reg);
  planner_ = base.get();
  planners_.emplace(clearance_key(planner_config.clearance_m), std::move(base));

  if (config_.threads != 1) {
    pool_ = std::make_unique<core::ThreadPool>(config_.threads);
    // Observation-only busy-time tap: per-shard tracer lanes, so the
    // concurrent callbacks never share an accumulator.
    pool_->set_shard_observer([this](std::size_t shard, std::uint64_t busy_ns) {
      telemetry_->tracer().add_shard_busy(shard, busy_ns);
    });
    // Per-job wall-time tap (fires on the stepping thread between jobs):
    // the exact utilization denominator — only spans where shards were
    // actually dispatched.
    pool_->set_job_observer([this](std::uint64_t wall_ns) {
      telemetry_->tracer().add_parallel_wall(wall_ns);
    });
    if (config_.scheduling == Scheduling::kWorkStealing) {
      pool_->set_assignment(core::ThreadPool::Assignment::kWorkStealing);
      work_stealing_active_ = true;
      g_work_stealing_->set(1.0);
    }
  }
  const std::size_t shards = pool_ ? pool_->shard_count() : 1;
  telemetry_->ensure_shards(shards);
  shard_query_.resize(shards);
  if (config_.exact_separation_samples) separation_exact_.emplace();
}

double Worksite::machine_clearance(const Machine& machine) {
  return machine.config().body_radius_m + kClearanceMarginM;
}

PathPlanner& Worksite::planner_for(double clearance_m) {
  const long key = clearance_key(clearance_m);
  auto it = planners_.find(key);
  if (it == planners_.end()) {
    PlannerConfig planner_config = planner_->config();
    planner_config.clearance_m = static_cast<double>(key) / 10.0;
    auto planner = std::make_unique<PathPlanner>(*terrain_, planner_config);
    planner->set_telemetry(&telemetry_->registry());
    it = planners_.emplace(key, std::move(planner)).first;
  }
  return *it->second;
}

void Worksite::block_region(core::Vec2 center, double radius, bool blocked) {
  for (auto& [key, planner] : planners_) {
    planner->set_region_blocked(center, radius, blocked);
  }
}

std::deque<core::Vec2> Worksite::plan_route(core::Vec2 from, core::Vec2 to) const {
  if (auto path = planner_->plan(from, to)) {
    return std::deque<core::Vec2>(path->begin(), path->end());
  }
  return {to};
}

void Worksite::route_machine(Machine& machine, core::Vec2 goal) {
  // Serial context (effect drain / setup), so flight-recorder writes are
  // ordered and deterministic here.
  PathPlanner& planner = planner_for(machine_clearance(machine));
  if (machine.try_reuse_route(goal, planner)) {
    c_route_reuses_->add();
    telemetry_->recorder().record(clock_.now(), "planner", "route-reuse",
                                  machine.id().value());
    return;
  }
  const PlannerStats before = planner.stats();
  std::deque<core::Vec2> route;
  if (auto path = planner.plan(machine.position(), goal)) {
    route.assign(path->begin(), path->end());
  } else {
    route = {goal};
  }
  const PlannerStats& after = planner.stats();
  telemetry_->recorder().record(
      clock_.now(), "planner",
      after.cache_hits > before.cache_hits ? "cache-hit" : "cache-miss",
      machine.id().value(), after.jps_expansions - before.jps_expansions);
  machine.set_route(std::move(route), goal, planner.generation());
}

void Worksite::route_machine(MachineId id, core::Vec2 goal) {
  if (Machine* m = machine(id)) route_machine(*m, goal);
}

MachineId Worksite::register_machine(std::unique_ptr<Machine> machine) {
  const MachineId id = machine->id();
  const std::size_t slot = machines_.size();
  if (machine_slot_by_id_.size() <= id.value()) {
    machine_slot_by_id_.resize(id.value() + 1, kNoSlot);
  }
  machine_slot_by_id_[id.value()] = slot;
  machine_hot_.x.push_back(machine->position().x);
  machine_hot_.y.push_back(machine->position().y);
  machine_hot_.heading.push_back(machine->heading());
  machine_hot_.speed.push_back(machine->speed());
  machine_hot_.id.push_back(id.value());
  machine_hot_.kind.push_back(machine->kind());
  if (machine->kind() == MachineKind::kDrone) drone_slots_.push_back(slot);
  machines_.push_back(std::move(machine));
  effects_.resize(machines_.size());
  separation_buffers_.resize(machines_.size());
  return id;
}

MachineId Worksite::add_forwarder(const std::string& name, core::Vec2 position,
                                  MachineConfig config) {
  const MachineId id = machine_ids_.next();
  forwarder_states_[id.value()] = ForwarderState{};
  return register_machine(std::make_unique<Machine>(
      id, MachineKind::kForwarder, name, position, config,
      core::Rng::fork_stream(seed_, kMachineStreamDomain, id.value())));
}

MachineId Worksite::add_harvester(const std::string& name, core::Vec2 position) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 1.5;  // harvesters crawl while working
  harvester_accum_m3_[id.value()] = 0.0;
  return register_machine(std::make_unique<Machine>(
      id, MachineKind::kHarvester, name, position, config,
      core::Rng::fork_stream(seed_, kMachineStreamDomain, id.value())));
}

MachineId Worksite::add_drone(const std::string& name, core::Vec2 position,
                              double altitude_m) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 12.0;
  config.turn_rate_rps = 2.5;
  config.altitude_m = altitude_m;
  config.body_radius_m = 0.4;
  return register_machine(std::make_unique<Machine>(
      id, MachineKind::kDrone, name, position, config,
      core::Rng::fork_stream(seed_, kMachineStreamDomain, id.value())));
}

HumanId Worksite::add_worker(const std::string& name, core::Vec2 position,
                             core::Vec2 work_anchor, HumanConfig config) {
  const HumanId id = human_ids_.next();
  if (human_slot_by_id_.size() <= id.value()) {
    human_slot_by_id_.resize(id.value() + 1, kNoSlot);
  }
  human_slot_by_id_[id.value()] = humans_.size();
  humans_.push_back(std::make_unique<Human>(
      id, name, position, work_anchor, config,
      core::Rng::fork_stream(seed_, kHumanStreamDomain, id.value())));
  human_hot_.x.push_back(position.x);
  human_hot_.y.push_back(position.y);
  human_hot_.height.push_back(humans_.back()->height());
  human_hot_.id.push_back(id.value());
  human_index_.insert(id.value(), position);
  return id;
}

std::vector<Machine*> Worksite::machines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<const Machine*> Worksite::machines() const {
  std::vector<const Machine*> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m.get());
  return out;
}

Machine* Worksite::machine(MachineId id) {
  if (id.value() >= machine_slot_by_id_.size()) return nullptr;
  const std::size_t slot = machine_slot_by_id_[id.value()];
  return slot == kNoSlot ? nullptr : machines_[slot].get();
}

const Machine* Worksite::machine(MachineId id) const {
  if (id.value() >= machine_slot_by_id_.size()) return nullptr;
  const std::size_t slot = machine_slot_by_id_[id.value()];
  return slot == kNoSlot ? nullptr : machines_[slot].get();
}

std::vector<Human*> Worksite::humans() {
  std::vector<Human*> out;
  out.reserve(humans_.size());
  for (auto& h : humans_) out.push_back(h.get());
  return out;
}

std::vector<const Human*> Worksite::humans() const {
  std::vector<const Human*> out;
  out.reserve(humans_.size());
  for (const auto& h : humans_) out.push_back(h.get());
  return out;
}

const Human* Worksite::human(HumanId id) const {
  if (id.value() >= human_slot_by_id_.size()) return nullptr;
  const std::size_t slot = human_slot_by_id_[id.value()];
  return slot == kNoSlot ? nullptr : humans_[slot].get();
}

std::vector<const Human*> Worksite::humans_within(core::Vec2 center,
                                                  double radius) const {
  human_index_.query_radius(center, radius, query_buffer_);
  std::vector<const Human*> out;
  out.reserve(query_buffer_.size());
  // Ascending id == insertion order, so downstream per-candidate RNG
  // consumption matches a brute-force scan over humans() exactly.
  for (const std::uint64_t id : query_buffer_) {
    out.push_back(humans_[human_slot_by_id_[id]].get());
  }
  return out;
}

void Worksite::humans_within_slots(core::Vec2 center, double radius,
                                   std::vector<std::uint32_t>& out) const {
  human_index_.query_radius(center, radius, query_buffer_);
  out.clear();
  out.reserve(query_buffer_.size());
  // Same set and ascending-id order as humans_within; slots index the
  // SoA mirrors directly.
  for (const std::uint64_t id : query_buffer_) {
    out.push_back(static_cast<std::uint32_t>(human_slot_by_id_[id]));
  }
}

ForwarderTask Worksite::task(MachineId id) const {
  const auto it = forwarder_states_.find(id.value());
  return it == forwarder_states_.end() ? ForwarderTask::kIdle : it->second.task;
}

void Worksite::set_drone_orbit(MachineId drone, MachineId anchor, double radius) {
  drone_orbits_[drone.value()] = DroneOrbit{anchor, radius, 0.0};
}

std::optional<std::uint64_t> Worksite::nearest_pile(core::Vec2 from) const {
  // Only live piles are in the grid, so no volume filter is needed here.
  return pile_index_.nearest(from);
}

LogPile* Worksite::pile_by_id(std::uint64_t pile_id) {
  const auto it = pile_slots_.find(pile_id);
  return it == pile_slots_.end() ? nullptr : &piles_[it->second];
}

const LogPile* Worksite::pile_by_id(std::uint64_t pile_id) const {
  const auto it = pile_slots_.find(pile_id);
  return it == pile_slots_.end() ? nullptr : &piles_[it->second];
}

void Worksite::compact_piles() {
  for (std::size_t i = 0; i < piles_.size();) {
    if (piles_[i].volume_m3 >= kPileExhaustedM3) {
      ++i;
      continue;
    }
    const std::uint64_t dead = piles_[i].id;
    pile_index_.remove(dead);
    pile_slots_.erase(dead);
    piles_[i] = piles_.back();
    piles_.pop_back();
    if (i < piles_.size()) pile_slots_[piles_[i].id] = i;
  }
}

void Worksite::step_weather_hazards() {
  if (config_.windthrow_rate_per_hour > 0.0) {
    const double step_hours =
        static_cast<double>(config_.step) / static_cast<double>(core::kHour);
    const double p = config_.windthrow_rate_per_hour *
                     windthrow_weather_factor(config_.weather) * step_hours;
    if (hazard_rng_.chance(p)) {
      const core::Aabb& bounds = terrain_->bounds();
      const core::Vec2 center{hazard_rng_.uniform(bounds.min.x, bounds.max.x),
                              hazard_rng_.uniform(bounds.min.y, bounds.max.y)};
      const double radius = config_.windthrow_radius_m;
      block_region(center, radius, true);
      c_windthrow_->add();
      telemetry_->recorder().record(clock_.now(), "worksite", "windthrow", 0,
                                    static_cast<std::uint64_t>(radius));
      if (config_.windthrow_duration > 0) {
        hazards_.push_back({center, radius, clock_.now() + config_.windthrow_duration});
      }
      bus_.publish({"worksite/windthrow",
                    "x=" + std::to_string(center.x) + ";y=" + std::to_string(center.y) +
                        ";r=" + std::to_string(radius),
                    0, clock_.now()});
    }
  }
  while (!hazards_.empty() && hazards_.front().until <= clock_.now()) {
    const ActiveHazard hazard = hazards_.front();
    hazards_.pop_front();
    // Freeing re-derives terrain-blocked cells, so clearing debris never
    // opens cells the forest itself blocks.
    block_region(hazard.center, hazard.radius, false);
    bus_.publish({"worksite/windthrow-cleared",
                  "x=" + std::to_string(hazard.center.x) +
                      ";y=" + std::to_string(hazard.center.y),
                  0, clock_.now()});
  }
}

void Worksite::decide_harvester(Machine& harvester, MachineEffects& fx) {
  // The harvester fells and processes continuously; every
  // pile_capacity_m3 produced, a new pile appears beside it.
  const double per_step = config_.harvester_output_m3_per_min *
                          static_cast<double>(config_.step) / core::kMinute;
  double& accum = harvester_accum_m3_.find(harvester.id().value())->second;
  accum += per_step;
  if (accum >= config_.pile_capacity_m3) {
    accum -= config_.pile_capacity_m3;
    const double angle = harvester.rng().uniform(0.0, 2.0 * std::numbers::pi);
    LogPile pile;  // id assigned by the drain (serial allocation)
    pile.position = harvester.position() +
                    core::Vec2{std::cos(angle), std::sin(angle)} * 6.0;
    pile.position = terrain_->bounds().clamp(pile.position);
    pile.volume_m3 = config_.pile_capacity_m3;
    fx.spawn = pile;
  }

  // Slowly advance the harvester through the stand.
  if (harvester.idle()) {
    const core::Vec2 target{
        harvester.rng().uniform(terrain_->bounds().min.x + 20,
                                terrain_->bounds().max.x - 20),
        harvester.rng().uniform(terrain_->bounds().min.y + 20,
                                terrain_->bounds().max.y - 20)};
    harvester.push_waypoint(target);
  }
}

void Worksite::decide_forwarder(Machine& forwarder, ForwarderState& state,
                                MachineEffects& fx) {
  // Decisions read the worksite as of the start of the step (piles and
  // indexes are frozen during the decide phase); shared effects are
  // buffered and committed by the drain. A pile another forwarder
  // exhausts this very step can therefore still be dispatched to — the
  // kToPile re-check next step resolves it, the same way the serial code
  // already handled a pile dying mid-wait.
  switch (state.task) {
    case ForwarderTask::kIdle: {
      const auto pile = nearest_pile(forwarder.position());
      if (pile) {
        state.pile_id = pile;
        state.task = ForwarderTask::kToPile;
        fx.action = MachineEffects::Action::kDispatch;
        fx.route_goal = pile_by_id(*pile)->position;
      }
      break;
    }
    case ForwarderTask::kToPile: {
      const LogPile* pile = state.pile_id ? pile_by_id(*state.pile_id) : nullptr;
      if (pile == nullptr || pile->volume_m3 < kPileExhaustedM3) {
        state.task = ForwarderTask::kIdle;
        break;
      }
      const core::Vec2 pile_pos = pile->position;
      const double pile_dist = core::distance(forwarder.position(), pile_pos);
      if (pile_dist < 4.0) {
        state.task = ForwarderTask::kLoading;
        state.action_remaining = config_.load_time;
      } else if (forwarder.idle()) {
        // Piles drop next to the harvester, frequently inside planner-
        // blocked cells; once close, crawl the final approach straight
        // (the machine threads between stems at walking pace in reality).
        fx.action = pile_dist < 25.0 ? MachineEffects::Action::kRouteDirect
                                     : MachineEffects::Action::kRoutePlanned;
        fx.route_goal = pile_pos;
      }
      break;
    }
    case ForwarderTask::kLoading: {
      if (forwarder.stopped()) break;  // e-stop pauses work
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        // The take amount and the follow-on dispatch depend on the live
        // pile state, which other forwarders mutate this step — commit
        // runs in the drain, in slot order, exactly like the serial loop.
        fx.action = MachineEffects::Action::kLoadCommit;
      }
      break;
    }
    case ForwarderTask::kToLanding: {
      const double landing_dist =
          core::distance(forwarder.position(), config_.landing_area);
      if (landing_dist < config_.landing_radius) {
        state.task = ForwarderTask::kUnloading;
        state.action_remaining = config_.unload_time;
      } else if (forwarder.idle()) {
        fx.action = landing_dist < config_.landing_radius + 20.0
                        ? MachineEffects::Action::kRouteDirect
                        : MachineEffects::Action::kRoutePlanned;
        fx.route_goal = config_.landing_area;
      }
      break;
    }
    case ForwarderTask::kUnloading: {
      if (forwarder.stopped()) break;
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        fx.unloaded_m3 = forwarder.unload_logs();
        state.task = ForwarderTask::kIdle;
        fx.action = MachineEffects::Action::kCycleCommit;
      }
      break;
    }
  }
}

void Worksite::decide_drone(Machine& drone) {
  const auto it = drone_orbits_.find(drone.id().value());
  if (it == drone_orbits_.end()) return;
  DroneOrbit& orbit = it->second;
  const Machine* anchor = machine(orbit.anchor);
  if (anchor == nullptr) return;

  // In the default decide phase this reads the anchor's start-of-step
  // pose: machine kinematics all advance after the decide barrier, so it
  // never races the anchor's movement (the serial loop used to see a
  // post-step pose when the anchor had a lower id — a one-step lag on a
  // 100 ms orbit update, not observable beyond the orbit tolerance).
  // With config.drone_follow_post_integrate this instead runs from the
  // serial follower phase after the integrate barrier, where the same
  // read yields the anchor's current (post-step) pose and the lag is
  // gone.
  orbit.phase += 0.35 * static_cast<double>(config_.step) / core::kSecond;
  const core::Vec2 target =
      anchor->position() +
      core::Vec2{std::cos(orbit.phase), std::sin(orbit.phase)} * orbit.radius;
  drone.set_route({target});
}

void Worksite::decide_machine(std::size_t slot, std::size_t shard) {
  (void)shard;
  Machine& m = *machines_[slot];
  MachineEffects& fx = effects_[slot];
  fx = MachineEffects{};
  switch (m.kind()) {
    case MachineKind::kHarvester:
      decide_harvester(m, fx);
      break;
    case MachineKind::kForwarder:
      decide_forwarder(m, forwarder_states_.find(m.id().value())->second, fx);
      break;
    case MachineKind::kDrone:
      // Post-integrate followers are decided (and stepped) by
      // follow_drones() after the integrate barrier instead.
      if (!config_.drone_follow_post_integrate) decide_drone(m);
      break;
  }
}

void Worksite::commit_load(Machine& forwarder, ForwarderState& state) {
  LogPile* pile = state.pile_id ? pile_by_id(*state.pile_id) : nullptr;
  if (pile == nullptr) {  // another forwarder exhausted it mid-wait
    state.task = ForwarderTask::kIdle;
    return;
  }
  const double take = std::min(
      pile->volume_m3, forwarder.config().load_capacity_m3 - forwarder.load_m3());
  pile->volume_m3 -= take;
  forwarder.load_logs(take);
  if (pile->volume_m3 < kPileExhaustedM3) {
    // Exhausted: hide from dispatch now, compacted at end of step.
    pile_index_.remove(pile->id);
  }
  if (forwarder.full() || !nearest_pile(forwarder.position())) {
    state.task = ForwarderTask::kToLanding;
    route_machine(forwarder, config_.landing_area);
  } else {
    state.task = ForwarderTask::kIdle;
  }
}

void Worksite::drain_machine_effects() {
  for (std::size_t slot = 0; slot < machines_.size(); ++slot) {
    Machine& m = *machines_[slot];
    MachineEffects& fx = effects_[slot];

    if (fx.spawn) {
      LogPile pile = *fx.spawn;
      pile.id = next_pile_id_++;
      pile_slots_[pile.id] = piles_.size();
      if (pile.volume_m3 >= kPileExhaustedM3) {
        pile_index_.insert(pile.id, pile.position);
      }
      piles_.push_back(pile);
      bus_.publish({"worksite/pile", "volume=" + std::to_string(pile.volume_m3),
                    m.id().value(), clock_.now()});
    }

    switch (fx.action) {
      case MachineEffects::Action::kNone:
        break;
      case MachineEffects::Action::kDispatch: {
        ForwarderState& state = forwarder_states_.find(m.id().value())->second;
        route_machine(m, fx.route_goal);
        bus_.publish({"forwarder/task",
                      std::string("task=") + std::string(task_name(state.task)),
                      m.id().value(), clock_.now()});
        break;
      }
      case MachineEffects::Action::kRoutePlanned:
        route_machine(m, fx.route_goal);
        break;
      case MachineEffects::Action::kRouteDirect:
        m.set_route({fx.route_goal}, fx.route_goal,
                    planner_for(machine_clearance(m)).generation());
        break;
      case MachineEffects::Action::kLoadCommit:
        commit_load(m, forwarder_states_.find(m.id().value())->second);
        break;
      case MachineEffects::Action::kCycleCommit:
        g_delivered_->add(fx.unloaded_m3);
        c_cycles_->add();
        bus_.publish({"forwarder/cycle",
                      "delivered=" + std::to_string(g_delivered_->value()),
                      m.id().value(), clock_.now()});
        break;
    }
  }
}

void Worksite::drain_separation_samples() {
  for (std::size_t slot = 0; slot < machines_.size(); ++slot) {
    for (const double d : separation_buffers_[slot]) {
      min_separation_ = std::min(min_separation_, d);
      separation_stats_.add(d);
      separation_hist_.add(d);
      h_separation_->add(d);
      if (separation_exact_) separation_exact_->add(d);
    }
  }
}

void Worksite::follow_drones() {
  // A drone anchored on another drone chains through the serial walk's
  // ascending-slot order (a later drone reads the earlier one's already-
  // stepped pose); sharding would change what it reads. Everything else
  // is pure per-drone: own orbit state, own route, anchors frozen after
  // the integrate barrier.
  bool anchored_on_drone = false;
  for (const std::size_t slot : drone_slots_) {
    const auto it = drone_orbits_.find(machines_[slot]->id().value());
    if (it == drone_orbits_.end()) continue;
    const Machine* anchor = machine(it->second.anchor);
    if (anchor != nullptr && anchor->kind() == MachineKind::kDrone) {
      anchored_on_drone = true;
      break;
    }
  }
  if (pool_ && !anchored_on_drone && drone_slots_.size() > 1) {
    pool_->parallel_for(drone_slots_.size(),
                        [this](std::size_t begin, std::size_t end, std::size_t shard) {
                          (void)shard;
                          for (std::size_t i = begin; i < end; ++i) {
                            Machine& drone = *machines_[drone_slots_[i]];
                            decide_drone(drone);
                            drone.step(config_.step);
                          }
                        });
    return;
  }
  for (const std::size_t slot : drone_slots_) {
    decide_drone(*machines_[slot]);
    machines_[slot]->step(config_.step);
  }
}

void Worksite::refresh_hot_state() {
  for (std::size_t slot = 0; slot < machines_.size(); ++slot) {
    const Machine& m = *machines_[slot];
    machine_hot_.x[slot] = m.position().x;
    machine_hot_.y[slot] = m.position().y;
    machine_hot_.heading[slot] = m.heading();
    machine_hot_.speed[slot] = m.speed();
  }
  for (std::size_t slot = 0; slot < humans_.size(); ++slot) {
    const Human& h = *humans_[slot];
    human_hot_.x[slot] = h.position().x;
    human_hot_.y[slot] = h.position().y;
  }
}

std::uint64_t Worksite::close_encounters(double threshold_m) const {
  if (threshold_m <= 0.0) return 0;
  if (separation_exact_) {
    // Exact audit path: scan the retained samples; agrees with the
    // histogram whenever threshold_m lands on a bin edge.
    const auto& samples = separation_exact_->samples();
    return static_cast<std::uint64_t>(
        std::count_if(samples.begin(), samples.end(),
                      [threshold_m](double d) { return d < threshold_m; }));
  }
  // Bin counts up to the threshold (rounded up to the next bin edge),
  // plus the overflow bucket when the threshold exceeds the tracked range.
  std::uint64_t n = separation_hist_.underflow();
  for (std::size_t i = 0; i < separation_hist_.bins(); ++i) {
    if (separation_hist_.bin_low(i) >= threshold_m) break;
    n += separation_hist_.bin_count(i);
  }
  if (threshold_m > config_.separation_tracking_m) n += separation_hist_.overflow();
  return n;
}

Worksite::Metrics Worksite::metrics() const {
  Metrics m;
  m.delivered_m3 = g_delivered_->value();
  m.completed_cycles = c_cycles_->value();
  m.min_human_separation = min_separation_;
  m.separation_samples = separation_stats_.count();
  m.route_reuses = c_route_reuses_->value();
  m.windthrow_events = c_windthrow_->value();
  for (const auto& [key, planner] : planners_) {
    const PlannerStats& s = planner->stats();
    m.planner.plans += s.plans;
    m.planner.cache_hits += s.cache_hits;
    m.planner.cache_misses += s.cache_misses;
    m.planner.invalidations += s.invalidations;
    m.planner.jps_expansions += s.jps_expansions;
  }
  return m;
}

void Worksite::parallel_over(std::size_t n, const core::ThreadPool::ShardFn& fn) {
  if (pool_) {
    pool_->parallel_for(n, fn);
  } else if (n > 0) {
    fn(0, n, 0);
  }
}

void Worksite::step() {
  // Phase spans are observation-only wall-clock taps (obs::Tracer); no
  // value read here ever feeds back into sim state.
  obs::Tracer& tracer = telemetry_->tracer();
  const std::uint64_t step_start_ns = obs::Tracer::now_ns();
  obs::Tracer::Span step_span = tracer.scoped(ph_step_);
  c_steps_->add();
  clock_.tick();

  {
    // Serial pre-phase: weather hazards mutate every planner's blocked
    // grid (and publish), so they must land before the decide barrier.
    obs::Tracer::Span span = tracer.scoped(ph_weather_);
    step_weather_hazards();
  }

  {
    // Decide (parallel): per-machine FSMs against frozen shared state.
    // Terrain and planner queries are excluded from this phase (both keep
    // mutable scratch/caches); routing happens in the drain.
    obs::Tracer::Span span = tracer.scoped(ph_decide_);
    parallel_over(machines_.size(),
                  [this](std::size_t begin, std::size_t end, std::size_t shard) {
                    for (std::size_t i = begin; i < end; ++i) decide_machine(i, shard);
                  });
  }

  {
    // Drain (serial, ascending slot = id order): pile spawns and takes,
    // planner routing, event publishes, delivery accounting. This pass
    // alone orders every shared mutation, which is what makes the step
    // thread-count-invariant.
    obs::Tracer::Span span = tracer.scoped(ph_drain_);
    drain_machine_effects();
  }

  {
    // Integrate (parallel): machine kinematics and human walks; each
    // entity touches only itself (humans draw from their own streams).
    obs::Tracer::Span span = tracer.scoped(ph_integrate_);
    const std::size_t machine_count = machines_.size();
    const bool defer_drones = config_.drone_follow_post_integrate;
    parallel_over(machine_count + humans_.size(),
                  [this, machine_count, defer_drones](std::size_t begin, std::size_t end,
                                                      std::size_t shard) {
                    (void)shard;
                    for (std::size_t i = begin; i < end; ++i) {
                      if (i < machine_count) {
                        if (defer_drones &&
                            machines_[i]->kind() == MachineKind::kDrone) {
                          continue;  // follower phase decides + steps these
                        }
                        machines_[i]->step(config_.step);
                      } else {
                        humans_[i - machine_count]->step(config_.step);
                      }
                    }
                  });
  }

  if (config_.drone_follow_post_integrate) {
    // Follower phase (serial, ascending slot order): drones orbit the
    // post-step anchor pose, eliminating the decide-phase one-step lag.
    obs::Tracer::Span span = tracer.scoped(ph_follow_);
    follow_drones();
  }

  {
    // Index write-phase (serial): fold the new human poses into the grid,
    // drop exhausted piles, refresh the SoA mirrors (all pose mutations
    // for this step are behind us now, so the mirrors match the entities
    // bit-for-bit until the next step).
    obs::Tracer::Span span = tracer.scoped(ph_index_);
    for (const auto& h : humans_) {
      human_index_.update(h->id().value(), h->position());
    }
    compact_piles();
    refresh_hot_state();
  }

  {
    // Separation sampling (parallel): the radius queries dominate the
    // tracking cost; each machine writes distances into its own buffer
    // using per-shard query scratch. The query counter uses its per-shard
    // lane, so the total is thread-count-invariant without atomics.
    obs::Tracer::Span span = tracer.scoped(ph_separation_);
    parallel_over(machines_.size(),
                  [this](std::size_t begin, std::size_t end, std::size_t shard) {
                    std::vector<std::uint64_t>& scratch = shard_query_[shard];
                    const double radius = config_.separation_tracking_m;
                    // Pure SoA streaming: kind/speed/pose reads hit the
                    // contiguous mirrors (refreshed in the index phase
                    // just above), never the per-entity heap objects.
                    for (std::size_t i = begin; i < end; ++i) {
                      std::vector<double>& out = separation_buffers_[i];
                      out.clear();
                      if (machine_hot_.kind[i] != MachineKind::kForwarder) continue;
                      if (machine_hot_.speed[i] < 0.3) continue;
                      const core::Vec2 mpos = machine_hot_.position(i);
                      c_sep_queries_->add(1, shard);
                      human_index_.query_radius(mpos, radius, scratch);
                      for (const std::uint64_t id : scratch) {
                        const std::size_t hs = human_slot_by_id_[id];
                        out.push_back(core::distance(mpos, human_hot_.position(hs)));
                      }
                    }
                  });
    drain_separation_samples();
  }

  if (pool_ && config_.scheduling == Scheduling::kAdaptive && !work_stealing_active_) {
    // Adaptive scheduling switch (serial context, end of step): when the
    // pool's busy-imbalance EWMA stays above threshold for a sustained
    // window, flip the assignment mode to work stealing for good. The
    // signal is wall-clock, but outcomes are assignment-invariant (every
    // shared effect is slot-buffered and drained in slot order), so the
    // switch point is unobservable in deterministic exports — it is
    // recorded only via the "wall."-prefixed gauge.
    constexpr double kImbalanceThreshold = 1.75;
    constexpr std::size_t kImbalanceWindow = 25;
    if (pool_->busy_imbalance() > kImbalanceThreshold) {
      if (++imbalance_streak_ >= kImbalanceWindow) {
        pool_->set_assignment(core::ThreadPool::Assignment::kWorkStealing);
        work_stealing_active_ = true;
        g_work_stealing_->set(1.0);
      }
    } else {
      imbalance_streak_ = 0;
    }
  }

  h_step_wall_->add(
      static_cast<double>(obs::Tracer::now_ns() - step_start_ns) / 1000.0);
}

}  // namespace agrarsec::sim
