#include "sim/worksite.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace agrarsec::sim {

namespace {
std::string_view task_name(ForwarderTask task) {
  switch (task) {
    case ForwarderTask::kIdle: return "idle";
    case ForwarderTask::kToPile: return "to-pile";
    case ForwarderTask::kLoading: return "loading";
    case ForwarderTask::kToLanding: return "to-landing";
    case ForwarderTask::kUnloading: return "unloading";
  }
  return "?";
}
}  // namespace

std::string_view weather_name(Weather weather) {
  switch (weather) {
    case Weather::kClear: return "clear";
    case Weather::kRain: return "rain";
    case Weather::kFog: return "fog";
    case Weather::kSnow: return "snow";
  }
  return "?";
}

Worksite::Worksite(WorksiteConfig config, std::uint64_t seed)
    : config_(config), rng_(seed), clock_(config.step) {
  core::Rng terrain_rng = rng_.fork(0x7e44a1);
  terrain_ = std::make_unique<Terrain>(Terrain::generate(config_.forest, terrain_rng));
  planner_ = std::make_unique<PathPlanner>(*terrain_);
}

std::deque<core::Vec2> Worksite::plan_route(core::Vec2 from, core::Vec2 to) const {
  if (auto path = planner_->plan(from, to)) {
    return std::deque<core::Vec2>(path->begin(), path->end());
  }
  return {to};
}

MachineId Worksite::add_forwarder(const std::string& name, core::Vec2 position,
                                  MachineConfig config) {
  const MachineId id = machine_ids_.next();
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kForwarder, name, position, config));
  forwarder_states_[id.value()] = ForwarderState{};
  return id;
}

MachineId Worksite::add_harvester(const std::string& name, core::Vec2 position) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 1.5;  // harvesters crawl while working
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kHarvester, name, position, config));
  return id;
}

MachineId Worksite::add_drone(const std::string& name, core::Vec2 position,
                              double altitude_m) {
  const MachineId id = machine_ids_.next();
  MachineConfig config;
  config.max_speed_mps = 12.0;
  config.turn_rate_rps = 2.5;
  config.altitude_m = altitude_m;
  config.body_radius_m = 0.4;
  machines_.push_back(
      std::make_unique<Machine>(id, MachineKind::kDrone, name, position, config));
  return id;
}

HumanId Worksite::add_worker(const std::string& name, core::Vec2 position,
                             core::Vec2 work_anchor, HumanConfig config) {
  const HumanId id = human_ids_.next();
  humans_.push_back(std::make_unique<Human>(id, name, position, work_anchor, config));
  return id;
}

std::vector<Machine*> Worksite::machines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<const Machine*> Worksite::machines() const {
  std::vector<const Machine*> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m.get());
  return out;
}

Machine* Worksite::machine(MachineId id) {
  for (auto& m : machines_) {
    if (m->id() == id) return m.get();
  }
  return nullptr;
}

const Machine* Worksite::machine(MachineId id) const {
  for (const auto& m : machines_) {
    if (m->id() == id) return m.get();
  }
  return nullptr;
}

std::vector<Human*> Worksite::humans() {
  std::vector<Human*> out;
  out.reserve(humans_.size());
  for (auto& h : humans_) out.push_back(h.get());
  return out;
}

std::vector<const Human*> Worksite::humans() const {
  std::vector<const Human*> out;
  out.reserve(humans_.size());
  for (const auto& h : humans_) out.push_back(h.get());
  return out;
}

ForwarderTask Worksite::task(MachineId id) const {
  const auto it = forwarder_states_.find(id.value());
  return it == forwarder_states_.end() ? ForwarderTask::kIdle : it->second.task;
}

void Worksite::set_drone_orbit(MachineId drone, MachineId anchor, double radius) {
  drone_orbits_[drone.value()] = DroneOrbit{anchor, radius, 0.0};
}

std::optional<std::size_t> Worksite::nearest_pile(core::Vec2 from) const {
  std::optional<std::size_t> best;
  double best_dist = 1e18;
  for (std::size_t i = 0; i < piles_.size(); ++i) {
    if (piles_[i].volume_m3 < 0.5) continue;
    const double d = core::distance(piles_[i].position, from);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

void Worksite::step_harvester(Machine& harvester) {
  // The harvester fells and processes continuously; every
  // pile_capacity_m3 produced, a new pile appears beside it.
  const double per_step = config_.harvester_output_m3_per_min *
                          static_cast<double>(config_.step) / core::kMinute;
  harvester_accumulator_m3_ += per_step;
  if (harvester_accumulator_m3_ >= config_.pile_capacity_m3) {
    harvester_accumulator_m3_ -= config_.pile_capacity_m3;
    const double angle = rng_.uniform(0.0, 2.0 * std::numbers::pi);
    LogPile pile;
    pile.position = harvester.position() +
                    core::Vec2{std::cos(angle), std::sin(angle)} * 6.0;
    pile.position = terrain_->bounds().clamp(pile.position);
    pile.volume_m3 = config_.pile_capacity_m3;
    piles_.push_back(pile);
    bus_.publish({"worksite/pile", "volume=" + std::to_string(pile.volume_m3),
                  harvester.id().value(), clock_.now()});
  }

  // Slowly advance the harvester through the stand.
  if (harvester.idle()) {
    const core::Vec2 target{
        rng_.uniform(terrain_->bounds().min.x + 20, terrain_->bounds().max.x - 20),
        rng_.uniform(terrain_->bounds().min.y + 20, terrain_->bounds().max.y - 20)};
    harvester.push_waypoint(target);
  }
}

void Worksite::step_forwarder(Machine& forwarder, ForwarderState& state) {
  switch (state.task) {
    case ForwarderTask::kIdle: {
      const auto pile = nearest_pile(forwarder.position());
      if (pile) {
        state.pile_index = pile;
        state.task = ForwarderTask::kToPile;
        forwarder.set_route(plan_route(forwarder.position(), piles_[*pile].position));
        bus_.publish({"forwarder/task", std::string("task=") +
                          std::string(task_name(state.task)),
                      forwarder.id().value(), clock_.now()});
      }
      break;
    }
    case ForwarderTask::kToPile: {
      if (!state.pile_index || piles_[*state.pile_index].volume_m3 < 0.5) {
        state.task = ForwarderTask::kIdle;
        break;
      }
      const core::Vec2 pile_pos = piles_[*state.pile_index].position;
      const double pile_dist = core::distance(forwarder.position(), pile_pos);
      if (pile_dist < 4.0) {
        state.task = ForwarderTask::kLoading;
        state.action_remaining = config_.load_time;
      } else if (forwarder.idle()) {
        // Piles drop next to the harvester, frequently inside planner-
        // blocked cells; once close, crawl the final approach straight
        // (the machine threads between stems at walking pace in reality).
        if (pile_dist < 25.0) {
          forwarder.set_route({pile_pos});
        } else {
          forwarder.set_route(plan_route(forwarder.position(), pile_pos));
        }
      }
      break;
    }
    case ForwarderTask::kLoading: {
      if (forwarder.stopped()) break;  // e-stop pauses work
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        LogPile& pile = piles_[*state.pile_index];
        const double take = std::min(
            pile.volume_m3, forwarder.config().load_capacity_m3 - forwarder.load_m3());
        pile.volume_m3 -= take;
        forwarder.load_logs(take);
        if (forwarder.full() || !nearest_pile(forwarder.position())) {
          state.task = ForwarderTask::kToLanding;
          forwarder.set_route(plan_route(forwarder.position(), config_.landing_area));
        } else {
          state.task = ForwarderTask::kIdle;
        }
      }
      break;
    }
    case ForwarderTask::kToLanding: {
      const double landing_dist =
          core::distance(forwarder.position(), config_.landing_area);
      if (landing_dist < config_.landing_radius) {
        state.task = ForwarderTask::kUnloading;
        state.action_remaining = config_.unload_time;
      } else if (forwarder.idle()) {
        if (landing_dist < config_.landing_radius + 20.0) {
          forwarder.set_route({config_.landing_area});
        } else {
          forwarder.set_route(plan_route(forwarder.position(), config_.landing_area));
        }
      }
      break;
    }
    case ForwarderTask::kUnloading: {
      if (forwarder.stopped()) break;
      state.action_remaining -= config_.step;
      if (state.action_remaining <= 0) {
        delivered_m3_ += forwarder.unload_logs();
        ++completed_cycles_;
        state.task = ForwarderTask::kIdle;
        bus_.publish({"forwarder/cycle",
                      "delivered=" + std::to_string(delivered_m3_),
                      forwarder.id().value(), clock_.now()});
      }
      break;
    }
  }
}

void Worksite::step_drone(Machine& drone) {
  const auto it = drone_orbits_.find(drone.id().value());
  if (it == drone_orbits_.end()) return;
  DroneOrbit& orbit = it->second;
  const Machine* anchor = machine(orbit.anchor);
  if (anchor == nullptr) return;

  orbit.phase += 0.35 * static_cast<double>(config_.step) / core::kSecond;
  const core::Vec2 target =
      anchor->position() +
      core::Vec2{std::cos(orbit.phase), std::sin(orbit.phase)} * orbit.radius;
  drone.set_route({target});
}

void Worksite::record_separations() {
  for (const auto& m : machines_) {
    if (m->kind() != MachineKind::kForwarder) continue;
    if (m->speed() < 0.3) continue;
    for (const auto& h : humans_) {
      const double d = core::distance(m->position(), h->position());
      min_separation_ = std::min(min_separation_, d);
      separation_samples_.push_back(d);
    }
  }
}

std::uint64_t Worksite::close_encounters(double threshold_m) const {
  return static_cast<std::uint64_t>(
      std::count_if(separation_samples_.begin(), separation_samples_.end(),
                    [threshold_m](double d) { return d < threshold_m; }));
}

void Worksite::step() {
  clock_.tick();

  for (auto& m : machines_) {
    switch (m->kind()) {
      case MachineKind::kHarvester:
        step_harvester(*m);
        break;
      case MachineKind::kForwarder:
        step_forwarder(*m, forwarder_states_[m->id().value()]);
        break;
      case MachineKind::kDrone:
        step_drone(*m);
        break;
    }
    m->step(config_.step);
  }
  for (auto& h : humans_) h->step(config_.step, rng_);
  record_separations();
}

}  // namespace agrarsec::sim
