#include "sim/machine.h"

#include <algorithm>
#include <cmath>

#include "sim/pathfinding.h"

namespace agrarsec::sim {

std::string_view machine_kind_name(MachineKind kind) {
  switch (kind) {
    case MachineKind::kForwarder: return "forwarder";
    case MachineKind::kHarvester: return "harvester";
    case MachineKind::kDrone: return "drone";
  }
  return "?";
}

Machine::Machine(MachineId id, MachineKind kind, std::string name, core::Vec2 position,
                 MachineConfig config, core::Rng rng)
    : id_(id), kind_(kind), name_(std::move(name)), position_(position),
      config_(config), rng_(rng) {}

void Machine::set_route(std::deque<core::Vec2> waypoints) {
  waypoints_ = std::move(waypoints);
  route_goal_ = std::nullopt;  // untracked route: nothing to lazily reuse
}

void Machine::set_route(std::deque<core::Vec2> waypoints, core::Vec2 goal,
                        std::uint64_t planner_generation) {
  waypoints_ = std::move(waypoints);
  route_goal_ = goal;
  route_generation_ = planner_generation;
}

void Machine::push_waypoint(core::Vec2 waypoint) {
  waypoints_.push_back(waypoint);
  route_goal_ = std::nullopt;  // appended legs invalidate the tracked goal
}

bool Machine::try_reuse_route(core::Vec2 goal, const PathPlanner& planner) {
  if (!route_goal_ || waypoints_.empty()) return false;
  // The blocked grid must be untouched since the route was planned:
  // intermediate legs are not re-verified here, so any set_region_blocked
  // (a new hazard could cut a middle leg) declines reuse wholesale.
  if (planner.generation() != route_generation_) return false;
  if (core::distance(*route_goal_, goal) > config_.replan_threshold_m) return false;
  // The leg currently being driven runs from the machine's live pose, which
  // is off the planned polyline — it was never verified by the search.
  if (!planner.segment_clear(position_, waypoints_.front())) return false;
  // Retargeting moves the final waypoint; the final leg must stay clear
  // from wherever it is entered.
  const core::Vec2 tail_from =
      waypoints_.size() >= 2 ? waypoints_[waypoints_.size() - 2] : position_;
  if (!planner.segment_clear(tail_from, goal)) return false;
  waypoints_.back() = goal;
  route_goal_ = goal;
  ++route_reuses_;
  return true;
}

std::optional<core::Vec2> Machine::current_waypoint() const {
  if (waypoints_.empty()) return std::nullopt;
  return waypoints_.front();
}

void Machine::emergency_stop(bool hard) {
  mode_ = DriveMode::kStopped;
  hard_braking_ = hard;
}

void Machine::release_stop() {
  if (mode_ == DriveMode::kStopped) mode_ = DriveMode::kNormal;
}

void Machine::set_degraded(bool degraded) {
  if (mode_ == DriveMode::kStopped) return;  // stop wins
  mode_ = degraded ? DriveMode::kDegraded : DriveMode::kNormal;
}

void Machine::load_logs(double volume_m3) {
  load_m3_ = std::min(config_.load_capacity_m3, load_m3_ + volume_m3);
}

double Machine::unload_logs() {
  const double v = load_m3_;
  load_m3_ = 0.0;
  return v;
}

double Machine::step(core::SimDuration dt_ms) {
  const double dt = static_cast<double>(dt_ms) / core::kSecond;

  if (mode_ == DriveMode::kStopped) {
    // Decelerate to rest.
    const double decel =
        hard_braking_ ? config_.brake_decel_mps2 : config_.brake_decel_mps2 * 0.5;
    speed_ = std::max(0.0, speed_ - decel * dt);
    const double travelled = speed_ * dt;
    position_ = position_ + core::Vec2{std::cos(heading_), std::sin(heading_)} * travelled;
    odometer_ += travelled;
    return travelled;
  }

  if (waypoints_.empty()) {
    speed_ = 0.0;
    return 0.0;
  }

  const core::Vec2 target = waypoints_.front();
  const core::Vec2 delta = target - position_;
  const double dist = delta.norm();
  if (dist < kWaypointTolerance) {
    waypoints_.pop_front();
    return step(0);  // re-evaluate with next waypoint (zero time)
  }

  // Turn towards the target with a yaw-rate limit.
  const double desired_heading = std::atan2(delta.y, delta.x);
  const double heading_error = core::wrap_angle(desired_heading - heading_);
  const double max_turn = config_.turn_rate_rps * dt;
  heading_ += std::clamp(heading_error, -max_turn, max_turn);
  heading_ = core::wrap_angle(heading_);

  // Speed: slow down in tight turns, when degraded, and on waypoint
  // approach. The approach slowdown keeps the turning radius
  // (speed / turn_rate) below the waypoint tolerance — without it a fast
  // machine orbits a waypoint it can never turn tightly enough to hit.
  double target_speed =
      (mode_ == DriveMode::kDegraded ? config_.degraded_speed_mps
                                     : config_.max_speed_mps) *
      (std::abs(heading_error) > 0.7 ? 0.4 : 1.0);
  const double capture_speed = config_.turn_rate_rps * kWaypointTolerance * 0.8;
  if (dist < 8.0) {
    target_speed = std::min(target_speed, std::max(capture_speed, dist * 0.4));
  }
  // Simple first-order speed response.
  speed_ += std::clamp(target_speed - speed_, -config_.brake_decel_mps2 * dt,
                       config_.brake_decel_mps2 * dt);

  const double travelled = std::min(speed_ * dt, dist);
  position_ = position_ + core::Vec2{std::cos(heading_), std::sin(heading_)} * travelled;
  odometer_ += travelled;
  return travelled;
}

}  // namespace agrarsec::sim
