#include "sim/pathfinding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <queue>

namespace agrarsec::sim {

namespace {
constexpr double kSqrt2 = std::numbers::sqrt2;

constexpr int sign_of(int v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

/// Octile cost of a straight (cardinal or diagonal) cell run.
double run_cost(int adx, int ady, double cell_size) {
  return adx > 0 && ady > 0 ? kSqrt2 * adx * cell_size
                            : static_cast<double>(adx + ady) * cell_size;
}
}  // namespace

PathPlanner::PathPlanner(const Terrain& terrain, PlannerConfig config)
    : terrain_(terrain), config_(config) {
  const core::Aabb& bounds = terrain.bounds();
  width_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / config_.cell_size_m)));
  height_ =
      std::max(1, static_cast<int>(std::ceil(bounds.height() / config_.cell_size_m)));
  blocked_.assign(static_cast<std::size_t>(width_) * height_, 0);

  for (int cy = 0; cy < height_; ++cy) {
    for (int cx = 0; cx < width_; ++cx) {
      blocked_[static_cast<std::size_t>(cy) * width_ + cx] =
          terrain_blocked(cx, cy) ? 1 : 0;
    }
  }
}

void PathPlanner::set_telemetry(obs::Registry* registry) {
  if (registry == nullptr) {
    c_plans_ = c_cache_hits_ = c_cache_misses_ = c_invalidations_ = c_jps_expansions_ =
        nullptr;
    return;
  }
  c_plans_ = &registry->counter("planner.plans");
  c_cache_hits_ = &registry->counter("planner.cache_hits");
  c_cache_misses_ = &registry->counter("planner.cache_misses");
  c_invalidations_ = &registry->counter("planner.invalidations");
  c_jps_expansions_ = &registry->counter("planner.jps_expansions");
}

bool PathPlanner::terrain_blocked(int cx, int cy) const {
  const core::Vec2 center = cell_center(cx, cy);
  if (terrain_.blocked(center, config_.clearance_m)) return true;
  if (config_.max_slope > 0.0) {
    // Gradient estimate across one cell.
    const double h = config_.cell_size_m * 0.5;
    const double gx = (terrain_.ground_height({center.x + h, center.y}) -
                       terrain_.ground_height({center.x - h, center.y})) /
                      (2.0 * h);
    const double gy = (terrain_.ground_height({center.x, center.y + h}) -
                       terrain_.ground_height({center.x, center.y - h})) /
                      (2.0 * h);
    if (std::hypot(gx, gy) > config_.max_slope) return true;
  }
  return false;
}

core::Vec2 PathPlanner::cell_center(int cx, int cy) const {
  const core::Aabb& bounds = terrain_.bounds();
  return {bounds.min.x + (cx + 0.5) * config_.cell_size_m,
          bounds.min.y + (cy + 0.5) * config_.cell_size_m};
}

std::pair<int, int> PathPlanner::cell_of(core::Vec2 p) const {
  const core::Aabb& bounds = terrain_.bounds();
  const core::Vec2 q = bounds.clamp(p);
  int cx = static_cast<int>((q.x - bounds.min.x) / config_.cell_size_m);
  int cy = static_cast<int>((q.y - bounds.min.y) / config_.cell_size_m);
  cx = std::clamp(cx, 0, width_ - 1);
  cy = std::clamp(cy, 0, height_ - 1);
  return {cx, cy};
}

bool PathPlanner::cell_free(int cx, int cy) const {
  if (cx < 0 || cy < 0 || cx >= width_ || cy >= height_) return false;
  return blocked_[static_cast<std::size_t>(cy) * width_ + cx] == 0;
}

void PathPlanner::set_region_blocked(core::Vec2 center, double radius, bool blocked) {
  const auto [cx0, cy0] = cell_of({center.x - radius, center.y - radius});
  const auto [cx1, cy1] = cell_of({center.x + radius, center.y + radius});
  bool changed = false;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      if (core::distance(cell_center(cx, cy), center) > radius) continue;
      const std::uint8_t want =
          blocked ? 1 : (terrain_blocked(cx, cy) ? 1 : 0);
      std::uint8_t& slot = blocked_[static_cast<std::size_t>(cy) * width_ + cx];
      if (slot != want) {
        slot = want;
        changed = true;
      }
    }
  }
  if (changed) ++generation_;
}

std::optional<std::pair<int, int>> PathPlanner::nearest_free(int cx, int cy) const {
  if (cell_free(cx, cy)) return std::make_pair(cx, cy);
  for (int radius = 1; radius <= 8; ++radius) {
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
        if (cell_free(cx + dx, cy + dy)) return std::make_pair(cx + dx, cy + dy);
      }
    }
  }
  return std::nullopt;
}

bool PathPlanner::segment_clear(core::Vec2 a, core::Vec2 b) const {
  // Clearance against obstacles (early-exit: smoothing probes thousands
  // of segments and only needs clear/not-clear, not the blocker list).
  if (terrain_.segment_blocked(a, b, config_.clearance_m)) return false;
  // Slope check sampled along the segment.
  const double len = core::distance(a, b);
  const int samples = std::max(2, static_cast<int>(len / config_.cell_size_m));
  for (int i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const auto [cx, cy] = cell_of(a + (b - a) * t);
    if (!cell_free(cx, cy)) return false;
  }
  return true;
}

std::vector<core::Vec2> PathPlanner::smooth(const std::vector<core::Vec2>& raw) const {
  if (raw.size() <= 2) return raw;
  std::vector<core::Vec2> out;
  std::size_t anchor = 0;
  out.push_back(raw[0]);
  while (anchor + 1 < raw.size()) {
    // Greedily extend the shortcut as far as the segment stays clear.
    std::size_t best = anchor + 1;
    for (std::size_t probe = raw.size() - 1; probe > anchor + 1; --probe) {
      if (segment_clear(raw[anchor], raw[probe])) {
        best = probe;
        break;
      }
    }
    out.push_back(raw[best]);
    anchor = best;
  }
  return out;
}

std::optional<std::pair<int, int>> PathPlanner::jump(int x, int y, int dx, int dy,
                                                     int goal_x, int goal_y) const {
  if (dx != 0 && dy != 0) {
    // Diagonal ray: a jump point is where a cardinal sub-ray finds one.
    while (true) {
      if (!cell_free(x, y)) return std::nullopt;
      if (x == goal_x && y == goal_y) return std::make_pair(x, y);
      if (jump(x + dx, y, dx, 0, goal_x, goal_y) ||
          jump(x, y + dy, 0, dy, goal_x, goal_y)) {
        return std::make_pair(x, y);
      }
      // Corner cutting forbidden: both orthogonals must be open to
      // continue diagonally.
      if (!cell_free(x + dx, y) || !cell_free(x, y + dy)) return std::nullopt;
      x += dx;
      y += dy;
    }
  }
  if (dx != 0) {
    // Horizontal ray.
    while (true) {
      if (!cell_free(x, y)) return std::nullopt;
      if (x == goal_x && y == goal_y) return std::make_pair(x, y);
      // Forced neighbour (no-corner-cutting variant): an opening beside
      // the ray that was walled off behind us forces a turning decision.
      // Checked before the dead-end test — the last cell of a corridor
      // with a side exit is blocked ahead yet still a jump point.
      if ((cell_free(x, y + 1) && !cell_free(x - dx, y + 1)) ||
          (cell_free(x, y - 1) && !cell_free(x - dx, y - 1))) {
        return std::make_pair(x, y);
      }
      if (!cell_free(x + dx, y)) return std::nullopt;  // dead end
      x += dx;
    }
  }
  // Vertical ray.
  while (true) {
    if (!cell_free(x, y)) return std::nullopt;
    if (x == goal_x && y == goal_y) return std::make_pair(x, y);
    if ((cell_free(x + 1, y) && !cell_free(x + 1, y - dy)) ||
        (cell_free(x - 1, y) && !cell_free(x - 1, y - dy))) {
      return std::make_pair(x, y);
    }
    if (!cell_free(x, y + dy)) return std::nullopt;
    y += dy;
  }
}

std::optional<std::vector<core::Vec2>> PathPlanner::search(int start_cx, int start_cy,
                                                           int goal_cx, int goal_cy,
                                                           bool& budget_exhausted) const {
  budget_exhausted = false;
  const int total = width_ * height_;
  auto index = [this](int cx, int cy) { return cy * width_ + cx; };
  const int start_idx = index(start_cx, start_cy);
  const int goal_idx = index(goal_cx, goal_cy);
  const core::Vec2 goal_center = cell_center(goal_cx, goal_cy);

  std::vector<core::Vec2> raw;
  if (start_idx == goal_idx) {
    raw.push_back(goal_center);
  } else {
    std::vector<double> g(static_cast<std::size_t>(total),
                          std::numeric_limits<double>::infinity());
    std::vector<int> parent(static_cast<std::size_t>(total), -1);
    std::vector<std::uint8_t> closed(static_cast<std::size_t>(total), 0);

    struct Node {
      double f;
      int idx;
      bool operator>(const Node& other) const { return f > other.f; }
    };
    std::priority_queue<Node, std::vector<Node>, std::greater<>> open;

    auto heuristic = [&](int cx, int cy) {
      const int adx = std::abs(cx - goal_cx);
      const int ady = std::abs(cy - goal_cy);
      // Octile distance: admissible and consistent for the 8-connected
      // uniform grid (matches the step costs exactly).
      return config_.cell_size_m *
             (std::max(adx, ady) + (kSqrt2 - 1.0) * std::min(adx, ady));
    };

    g[static_cast<std::size_t>(start_idx)] = 0.0;
    open.push({heuristic(start_cx, start_cy), start_idx});

    std::size_t expansions = 0;
    bool found = false;
    // Direction candidates of the node being expanded (at most 8).
    int dirs[8][2];
    while (!open.empty()) {
      const Node node = open.top();
      open.pop();
      if (closed[static_cast<std::size_t>(node.idx)]) continue;
      closed[static_cast<std::size_t>(node.idx)] = 1;
      if (node.idx == goal_idx) {
        found = true;
        break;
      }
      if (++expansions > config_.max_expansions) {
        budget_exhausted = true;
        return std::nullopt;
      }
      ++stats_.jps_expansions;
      if (c_jps_expansions_) c_jps_expansions_->add();

      const int cx = node.idx % width_;
      const int cy = node.idx / width_;
      int pdx = 0;
      int pdy = 0;
      if (const int pidx = parent[static_cast<std::size_t>(node.idx)]; pidx != -1) {
        pdx = sign_of(cx - pidx % width_);
        pdy = sign_of(cy - pidx / width_);
      }

      // Pruned successor directions, per the arrival direction. Corner
      // cutting is forbidden, so diagonal candidates require both
      // orthogonally adjacent cells open.
      int ndirs = 0;
      auto add = [&](int dx, int dy) {
        dirs[ndirs][0] = dx;
        dirs[ndirs][1] = dy;
        ++ndirs;
      };
      if (pdx == 0 && pdy == 0) {
        // Start node: every legal direction.
        add(1, 0);
        add(-1, 0);
        add(0, 1);
        add(0, -1);
        for (const int ddx : {1, -1}) {
          for (const int ddy : {1, -1}) {
            if (cell_free(cx + ddx, cy) && cell_free(cx, cy + ddy)) add(ddx, ddy);
          }
        }
      } else if (pdx != 0 && pdy != 0) {
        const bool horiz = cell_free(cx + pdx, cy);
        const bool vert = cell_free(cx, cy + pdy);
        if (vert) add(0, pdy);
        if (horiz) add(pdx, 0);
        if (horiz && vert) add(pdx, pdy);
      } else if (pdx != 0) {
        const bool next = cell_free(cx + pdx, cy);
        const bool up = cell_free(cx, cy + 1);
        const bool down = cell_free(cx, cy - 1);
        if (next) {
          add(pdx, 0);
          if (up) add(pdx, 1);
          if (down) add(pdx, -1);
        }
        if (up) add(0, 1);
        if (down) add(0, -1);
      } else {
        const bool next = cell_free(cx, cy + pdy);
        const bool right = cell_free(cx + 1, cy);
        const bool left = cell_free(cx - 1, cy);
        if (next) {
          add(0, pdy);
          if (right) add(1, pdy);
          if (left) add(-1, pdy);
        }
        if (right) add(1, 0);
        if (left) add(-1, 0);
      }

      for (int d = 0; d < ndirs; ++d) {
        const int dx = dirs[d][0];
        const int dy = dirs[d][1];
        const auto jp = jump(cx + dx, cy + dy, dx, dy, goal_cx, goal_cy);
        if (!jp) continue;
        const int nidx = index(jp->first, jp->second);
        if (closed[static_cast<std::size_t>(nidx)]) continue;
        const double step = run_cost(std::abs(jp->first - cx),
                                     std::abs(jp->second - cy), config_.cell_size_m);
        const double candidate = g[static_cast<std::size_t>(node.idx)] + step;
        if (candidate < g[static_cast<std::size_t>(nidx)]) {
          g[static_cast<std::size_t>(nidx)] = candidate;
          parent[static_cast<std::size_t>(nidx)] = node.idx;
          open.push({candidate + heuristic(jp->first, jp->second), nidx});
        }
      }
    }

    if (!found) return std::nullopt;

    // Reconstruct goal->start through the jump points, expanding each
    // straight run back into per-cell waypoints so smoothing sees the
    // same dense polyline vanilla A* produced (fallback legs stay one
    // cell long and never skate past unprobed obstacles).
    std::vector<int> cells;
    cells.push_back(goal_idx);
    for (int idx = goal_idx; parent[static_cast<std::size_t>(idx)] != -1;) {
      const int pidx = parent[static_cast<std::size_t>(idx)];
      int x = idx % width_;
      int y = idx / width_;
      const int px = pidx % width_;
      const int py = pidx / width_;
      const int dx = sign_of(px - x);
      const int dy = sign_of(py - y);
      while (x != px || y != py) {
        x += dx;
        y += dy;
        cells.push_back(index(x, y));
      }
      idx = pidx;
    }
    raw.reserve(cells.size());
    for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
      raw.push_back(cell_center(*it % width_, *it / width_));
    }
  }

  std::vector<core::Vec2> smoothed = smooth(raw);
  // Drop the start-cell center: the machine is already in that cell.
  if (!smoothed.empty()) smoothed.erase(smoothed.begin());
  if (smoothed.empty()) smoothed.push_back(goal_center);
  return smoothed;
}

std::optional<std::vector<core::Vec2>> PathPlanner::plan(core::Vec2 start,
                                                         core::Vec2 goal) const {
  ++stats_.plans;
  if (c_plans_) c_plans_->add();
  const auto [scx, scy] = cell_of(start);
  const auto [gcx, gcy] = cell_of(goal);
  const auto start_cell = nearest_free(scx, scy);
  const auto goal_cell = nearest_free(gcx, gcy);
  if (!start_cell || !goal_cell) return std::nullopt;

  const std::uint64_t start_idx = static_cast<std::uint64_t>(
      start_cell->second * width_ + start_cell->first);
  const std::uint64_t goal_idx =
      static_cast<std::uint64_t>(goal_cell->second * width_ + goal_cell->first);
  const std::uint64_t key = (start_idx << 32) | goal_idx;

  std::optional<std::vector<core::Vec2>> route;
  bool served_from_cache = false;
  if (config_.cache_enabled) {
    if (const auto it = cache_.find(key); it != cache_.end()) {
      if (it->second.generation == generation_) {
        ++stats_.cache_hits;
        if (c_cache_hits_) c_cache_hits_->add();
        if (!it->second.reachable) return std::nullopt;
        route = it->second.route;
        served_from_cache = true;
      } else {
        // Stale generation: the blocked grid changed since this was planned.
        ++stats_.invalidations;
        if (c_invalidations_) c_invalidations_->add();
        cache_.erase(it);
      }
    }
  }

  if (!served_from_cache) {
    ++stats_.cache_misses;
    if (c_cache_misses_) c_cache_misses_->add();
    bool budget_exhausted = false;
    route = search(start_cell->first, start_cell->second, goal_cell->first,
                   goal_cell->second, budget_exhausted);
    // A budget-exhausted failure is transient (a bigger budget might reach
    // the goal); caching it would make it sticky for the whole generation.
    // Only definitive results — found, or open list drained — are cached.
    if (config_.cache_enabled && !budget_exhausted) {
      if (cache_.size() >= config_.cache_capacity) cache_.clear();
      CacheEntry entry;
      entry.generation = generation_;
      entry.reachable = route.has_value();
      if (route) entry.route = *route;
      cache_.insert_or_assign(key, std::move(entry));
    }
  }
  if (!route) return std::nullopt;

  // First-leg anchoring: cached routes start at the first waypoint past the
  // start cell (they are pure functions of the snapped cells), but the true
  // pose may sit up to a cell — or, snapped off a blocked cell, several
  // cells — away from where smoothing assumed. When the direct pose leg is
  // not clear, re-anchor through the start-cell center, the point the
  // search actually verified. Pose-dependent, so applied outside the cache.
  if (!segment_clear(start, route->front())) {
    const core::Vec2 anchor = cell_center(start_cell->first, start_cell->second);
    if (anchor.x != route->front().x || anchor.y != route->front().y) {
      route->insert(route->begin(), anchor);
    }
  }
  return route;
}

}  // namespace agrarsec::sim
