#include "sim/pathfinding.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace agrarsec::sim {

PathPlanner::PathPlanner(const Terrain& terrain, PlannerConfig config)
    : terrain_(terrain), config_(config) {
  const core::Aabb& bounds = terrain.bounds();
  width_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / config_.cell_size_m)));
  height_ =
      std::max(1, static_cast<int>(std::ceil(bounds.height() / config_.cell_size_m)));
  blocked_.assign(static_cast<std::size_t>(width_) * height_, 0);

  for (int cy = 0; cy < height_; ++cy) {
    for (int cx = 0; cx < width_; ++cx) {
      const core::Vec2 center = cell_center(cx, cy);
      bool bad = terrain_.blocked(center, config_.clearance_m);
      if (!bad && config_.max_slope > 0.0) {
        // Gradient estimate across one cell.
        const double h = config_.cell_size_m * 0.5;
        const double gx = (terrain_.ground_height({center.x + h, center.y}) -
                           terrain_.ground_height({center.x - h, center.y})) /
                          (2.0 * h);
        const double gy = (terrain_.ground_height({center.x, center.y + h}) -
                           terrain_.ground_height({center.x, center.y - h})) /
                          (2.0 * h);
        bad = std::hypot(gx, gy) > config_.max_slope;
      }
      blocked_[static_cast<std::size_t>(cy) * width_ + cx] = bad ? 1 : 0;
    }
  }
}

core::Vec2 PathPlanner::cell_center(int cx, int cy) const {
  const core::Aabb& bounds = terrain_.bounds();
  return {bounds.min.x + (cx + 0.5) * config_.cell_size_m,
          bounds.min.y + (cy + 0.5) * config_.cell_size_m};
}

std::pair<int, int> PathPlanner::cell_of(core::Vec2 p) const {
  const core::Aabb& bounds = terrain_.bounds();
  const core::Vec2 q = bounds.clamp(p);
  int cx = static_cast<int>((q.x - bounds.min.x) / config_.cell_size_m);
  int cy = static_cast<int>((q.y - bounds.min.y) / config_.cell_size_m);
  cx = std::clamp(cx, 0, width_ - 1);
  cy = std::clamp(cy, 0, height_ - 1);
  return {cx, cy};
}

bool PathPlanner::cell_free(int cx, int cy) const {
  if (cx < 0 || cy < 0 || cx >= width_ || cy >= height_) return false;
  return blocked_[static_cast<std::size_t>(cy) * width_ + cx] == 0;
}

std::optional<std::pair<int, int>> PathPlanner::nearest_free(int cx, int cy) const {
  if (cell_free(cx, cy)) return std::make_pair(cx, cy);
  for (int radius = 1; radius <= 8; ++radius) {
    for (int dy = -radius; dy <= radius; ++dy) {
      for (int dx = -radius; dx <= radius; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
        if (cell_free(cx + dx, cy + dy)) return std::make_pair(cx + dx, cy + dy);
      }
    }
  }
  return std::nullopt;
}

bool PathPlanner::segment_clear(core::Vec2 a, core::Vec2 b) const {
  // Clearance against obstacles (early-exit: smoothing probes thousands
  // of segments and only needs clear/not-clear, not the blocker list).
  if (terrain_.segment_blocked(a, b, config_.clearance_m)) return false;
  // Slope check sampled along the segment.
  const double len = core::distance(a, b);
  const int samples = std::max(2, static_cast<int>(len / config_.cell_size_m));
  for (int i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const auto [cx, cy] = cell_of(a + (b - a) * t);
    if (!cell_free(cx, cy)) return false;
  }
  return true;
}

std::vector<core::Vec2> PathPlanner::smooth(const std::vector<core::Vec2>& raw) const {
  if (raw.size() <= 2) return raw;
  std::vector<core::Vec2> out;
  std::size_t anchor = 0;
  out.push_back(raw[0]);
  while (anchor + 1 < raw.size()) {
    // Greedily extend the shortcut as far as the segment stays clear.
    std::size_t best = anchor + 1;
    for (std::size_t probe = raw.size() - 1; probe > anchor + 1; --probe) {
      if (segment_clear(raw[anchor], raw[probe])) {
        best = probe;
        break;
      }
    }
    out.push_back(raw[best]);
    anchor = best;
  }
  return out;
}

std::optional<std::vector<core::Vec2>> PathPlanner::plan(core::Vec2 start,
                                                         core::Vec2 goal) const {
  const auto start_cell = nearest_free(cell_of(start).first, cell_of(start).second);
  const auto goal_cell = nearest_free(cell_of(goal).first, cell_of(goal).second);
  if (!start_cell || !goal_cell) return std::nullopt;

  const int total = width_ * height_;
  auto index = [this](int cx, int cy) { return cy * width_ + cx; };

  std::vector<double> g(static_cast<std::size_t>(total),
                        std::numeric_limits<double>::infinity());
  std::vector<int> parent(static_cast<std::size_t>(total), -1);
  std::vector<std::uint8_t> closed(static_cast<std::size_t>(total), 0);

  struct Node {
    double f;
    int idx;
    bool operator>(const Node& other) const { return f > other.f; }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;

  const int start_idx = index(start_cell->first, start_cell->second);
  const int goal_idx = index(goal_cell->first, goal_cell->second);
  const core::Vec2 goal_center = cell_center(goal_cell->first, goal_cell->second);

  auto heuristic = [&](int idx) {
    const int cx = idx % width_;
    const int cy = idx / width_;
    return core::distance(cell_center(cx, cy), goal_center);
  };

  g[static_cast<std::size_t>(start_idx)] = 0.0;
  open.push({heuristic(start_idx), start_idx});

  static constexpr int kDx[8] = {1, -1, 0, 0, 1, 1, -1, -1};
  static constexpr int kDy[8] = {0, 0, 1, -1, 1, -1, 1, -1};

  std::size_t expansions = 0;
  while (!open.empty()) {
    const Node node = open.top();
    open.pop();
    if (closed[static_cast<std::size_t>(node.idx)]) continue;
    closed[static_cast<std::size_t>(node.idx)] = 1;
    if (node.idx == goal_idx) break;
    if (++expansions > config_.max_expansions) return std::nullopt;

    const int cx = node.idx % width_;
    const int cy = node.idx / width_;
    for (int dir = 0; dir < 8; ++dir) {
      const int nx = cx + kDx[dir];
      const int ny = cy + kDy[dir];
      if (!cell_free(nx, ny)) continue;
      // Forbid diagonal corner cutting through blocked orthogonals.
      if (kDx[dir] != 0 && kDy[dir] != 0 &&
          (!cell_free(cx + kDx[dir], cy) || !cell_free(cx, cy + kDy[dir]))) {
        continue;
      }
      const int nidx = index(nx, ny);
      if (closed[static_cast<std::size_t>(nidx)]) continue;
      const double step =
          (kDx[dir] != 0 && kDy[dir] != 0 ? 1.41421356237 : 1.0) * config_.cell_size_m;
      const double candidate = g[static_cast<std::size_t>(node.idx)] + step;
      if (candidate < g[static_cast<std::size_t>(nidx)]) {
        g[static_cast<std::size_t>(nidx)] = candidate;
        parent[static_cast<std::size_t>(nidx)] = node.idx;
        open.push({candidate + heuristic(nidx), nidx});
      }
    }
  }

  if (!closed[static_cast<std::size_t>(goal_idx)]) return std::nullopt;

  std::vector<core::Vec2> raw;
  for (int idx = goal_idx; idx != -1; idx = parent[static_cast<std::size_t>(idx)]) {
    raw.push_back(cell_center(idx % width_, idx / width_));
  }
  std::reverse(raw.begin(), raw.end());
  raw.front() = start;  // anchor smoothing at the true pose
  std::vector<core::Vec2> smoothed = smooth(raw);
  // Drop the synthetic start point.
  if (!smoothed.empty()) smoothed.erase(smoothed.begin());
  if (smoothed.empty()) smoothed.push_back(goal_center);
  return smoothed;
}

}  // namespace agrarsec::sim
