// Certificate Authority and Certificate Revocation List. A worksite runs
// one root CA (at the operator organization) and optionally an on-site
// intermediate CA so that new machines can be enrolled while the site is
// disconnected — the "remote and isolated locations" characteristic from
// Table I of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/result.h"
#include "pki/certificate.h"

namespace agrarsec::pki {

/// Signed revocation list.
struct Crl {
  std::string issuer;
  core::SimTime issued_at = 0;
  std::vector<std::uint64_t> revoked_serials;  // sorted
  crypto::Ed25519Signature signature{};

  [[nodiscard]] core::Bytes encode_tbs() const;
  [[nodiscard]] bool covers(CertSerial serial) const;
  [[nodiscard]] bool verify_signature(const crypto::Ed25519PublicKey& issuer_key) const;

  /// Full wire form (TBS || signature) for over-the-air distribution to
  /// the disconnected site (the "stale-revocation" threat's mitigation).
  [[nodiscard]] core::Bytes encode() const;
  static std::optional<Crl> decode(std::span<const std::uint8_t> data);
};

/// Parameters for issuing a certificate.
struct IssueRequest {
  std::string subject;
  CertRole role = CertRole::kMachine;
  KeyUsage usage;
  core::SimTime not_before = 0;
  core::SimTime not_after = 0;
  crypto::Ed25519PublicKey signing_key{};
  crypto::X25519Key agreement_key{};
  std::uint8_t path_length = 0;
};

class CertificateAuthority {
 public:
  /// Creates a self-signed root CA.
  static CertificateAuthority create_root(const std::string& name,
                                          const crypto::Ed25519Seed& seed,
                                          core::SimTime not_before,
                                          core::SimTime not_after);

  /// Creates an intermediate CA certified by `parent`. Fails when the
  /// parent lacks issuing rights or path length is exhausted.
  static core::Result<CertificateAuthority> create_intermediate(
      CertificateAuthority& parent, const std::string& name,
      const crypto::Ed25519Seed& seed, core::SimTime not_before,
      core::SimTime not_after);

  /// Issues an end-entity (or CA, if usage.can_issue) certificate.
  core::Result<Certificate> issue(const IssueRequest& request);

  /// Marks a serial revoked; subsequent CRLs cover it.
  void revoke(CertSerial serial);

  /// Produces a freshly signed CRL.
  [[nodiscard]] Crl current_crl(core::SimTime now) const;

  [[nodiscard]] const Certificate& certificate() const { return certificate_; }
  [[nodiscard]] const std::string& name() const { return certificate_.body.subject; }
  [[nodiscard]] std::uint64_t issued_count() const { return issued_; }

 private:
  CertificateAuthority(Certificate cert, crypto::Ed25519KeyPair keypair,
                       std::uint64_t first_serial);

  Certificate sign_body(CertificateBody body);

  Certificate certificate_;
  crypto::Ed25519KeyPair keypair_;
  std::uint64_t next_serial_;
  std::uint64_t issued_ = 0;
  std::set<std::uint64_t> revoked_;
};

}  // namespace agrarsec::pki
