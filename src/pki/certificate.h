// Certificate model for the worksite PKI. Chattopadhyay & Lam (cited by
// the paper, §IV-C) emphasize a Certificate Authority issuing certificates
// to every component communicating with the cyber-physical system; this
// module provides that: Ed25519-signed certificates binding a subject name
// and role to a signing key and a static key-agreement key.
//
// The wire format is a deterministic length-framed encoding (not X.509 —
// the simulated ECUs speak this compact format), so signatures are over a
// canonical byte string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/bytes.h"
#include "core/time.h"
#include "core/types.h"
#include "crypto/ed25519.h"
#include "crypto/x25519.h"

namespace agrarsec::pki {

/// Role of the certified entity; chain validation enforces role rules
/// (only kCa roles may issue).
enum class CertRole : std::uint8_t {
  kRootCa = 0,
  kIntermediateCa = 1,
  kMachine = 2,       ///< forwarder / harvester ECU
  kDrone = 3,
  kOperatorStation = 4,
  kSensorUnit = 5,
  kFirmwareSigner = 6,
};

[[nodiscard]] std::string_view cert_role_name(CertRole role);

/// Key-usage bits.
struct KeyUsage {
  bool can_sign = false;        ///< may sign handshake transcripts / firmware
  bool can_key_agree = false;   ///< may be used for X25519 static DH
  bool can_issue = false;       ///< may sign subordinate certificates

  [[nodiscard]] std::uint8_t encode() const;
  static KeyUsage decode(std::uint8_t bits);
};

/// To-be-signed certificate contents.
struct CertificateBody {
  CertSerial serial;
  std::string subject;            ///< e.g. "forwarder-01.site-7"
  std::string issuer;             ///< subject of the issuing CA
  CertSerial issuer_serial;
  CertRole role = CertRole::kMachine;
  KeyUsage usage;
  core::SimTime not_before = 0;
  core::SimTime not_after = 0;
  crypto::Ed25519PublicKey signing_key{};   ///< subject's Ed25519 key
  crypto::X25519Key agreement_key{};        ///< subject's static X25519 key
  std::uint8_t path_length = 0;             ///< max CA chain below (CA certs)

  /// Canonical byte encoding covered by the signature.
  [[nodiscard]] core::Bytes encode_tbs() const;
};

/// A signed certificate.
struct Certificate {
  CertificateBody body;
  crypto::Ed25519Signature signature{};

  /// Verifies the signature against the given issuer key.
  [[nodiscard]] bool verify_signature(const crypto::Ed25519PublicKey& issuer_key) const;

  /// True when `now` lies in the validity window.
  [[nodiscard]] bool valid_at(core::SimTime now) const;

  /// Full serialization (TBS || signature).
  [[nodiscard]] core::Bytes encode() const;

  /// Parses an encode() blob. Returns nullopt on any structural problem
  /// (signature validity is NOT checked here — that is the trust store's
  /// job against the right issuer key).
  static std::optional<Certificate> decode(std::span<const std::uint8_t> data);

  /// Stable fingerprint (SHA-256 of the encoding) for pinning/logging.
  [[nodiscard]] std::string fingerprint() const;
};

}  // namespace agrarsec::pki
