// Chain validation against a set of trusted roots plus installed CRLs.
// Implements the path-validation rules the secure channel and secure boot
// rely on: signature chain, validity windows, revocation, key usage, role
// constraints and path-length limits.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "pki/authority.h"
#include "pki/certificate.h"

namespace agrarsec::pki {

/// Why a chain failed validation (stable codes used by IDS rules too).
/// See TrustStore::validate for the checks, in order.
class TrustStore {
 public:
  /// Installs a trusted root (self-signed CA certificate). Rejects
  /// non-self-signed or non-CA certificates.
  core::Status add_root(const Certificate& root);

  /// Installs/refreshes a CRL. The CRL signature is checked against the
  /// issuer's certificate (root or previously validated intermediate).
  core::Status add_crl(const Crl& crl, const Certificate& issuer_cert);

  /// Validates `chain` (leaf first, root-anchored last link signed by an
  /// installed root). Returns the validated leaf on success.
  ///
  /// Checks, in order: non-empty; every link's signature; issuer present &
  /// trusted; CA bits on all issuing certs; path length; validity window
  /// at `now`; revocation per installed CRLs; leaf role is an end-entity
  /// role (unless `allow_ca_leaf`).
  core::Result<Certificate> validate(const std::vector<Certificate>& chain,
                                     core::SimTime now,
                                     bool allow_ca_leaf = false) const;

  /// Convenience for the common leaf+intermediates shape.
  [[nodiscard]] bool is_trusted(const std::vector<Certificate>& chain,
                                core::SimTime now) const {
    return validate(chain, now).ok();
  }

  [[nodiscard]] std::size_t root_count() const { return roots_.size(); }
  [[nodiscard]] std::size_t crl_count() const { return crls_.size(); }

 private:
  [[nodiscard]] bool revoked(const Certificate& cert) const;

  std::unordered_map<std::string, Certificate> roots_;  // by subject
  std::unordered_map<std::string, Crl> crls_;           // by issuer
};

}  // namespace agrarsec::pki
