#include "pki/identity.h"

namespace agrarsec::pki {

core::Result<Identity> enroll(CertificateAuthority& ca, crypto::Drbg& drbg,
                              const std::string& subject, CertRole role,
                              core::SimTime not_before, core::SimTime not_after,
                              const std::vector<Certificate>& intermediates) {
  Identity id;
  id.signing = crypto::ed25519_keypair(drbg.generate32());
  id.agreement_private = drbg.generate32();
  id.agreement_public = crypto::x25519_base(id.agreement_private);

  IssueRequest req;
  req.subject = subject;
  req.role = role;
  req.usage = KeyUsage{.can_sign = true, .can_key_agree = true, .can_issue = false};
  req.not_before = not_before;
  req.not_after = not_after;
  req.signing_key = id.signing.public_key;
  req.agreement_key = id.agreement_public;

  auto cert = ca.issue(req);
  if (!cert.ok()) return cert.error();
  id.chain.push_back(std::move(cert).take());
  for (const Certificate& c : intermediates) id.chain.push_back(c);
  return id;
}

}  // namespace agrarsec::pki
