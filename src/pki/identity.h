// A machine identity: the bundle of long-term secrets plus the certificate
// chain a node presents during the secure-channel handshake. Produced by
// the enrollment flow (CA issue) and consumed by secure::Handshake.
#pragma once

#include <string>
#include <vector>

#include "crypto/ed25519.h"
#include "crypto/random.h"
#include "crypto/x25519.h"
#include "pki/authority.h"
#include "pki/certificate.h"

namespace agrarsec::pki {

struct Identity {
  crypto::Ed25519KeyPair signing;                 ///< long-term signature keys
  std::array<std::uint8_t, 32> agreement_private{};  ///< static X25519 secret
  crypto::X25519Key agreement_public{};
  std::vector<Certificate> chain;                 ///< leaf first

  [[nodiscard]] const Certificate& leaf() const { return chain.front(); }
  [[nodiscard]] const std::string& subject() const { return chain.front().body.subject; }
};

/// Generates fresh keys from `drbg` and enrolls `subject` with `ca`.
/// `intermediates` (possibly empty) are appended to the presented chain in
/// order from the issuing CA upwards.
core::Result<Identity> enroll(CertificateAuthority& ca, crypto::Drbg& drbg,
                              const std::string& subject, CertRole role,
                              core::SimTime not_before, core::SimTime not_after,
                              const std::vector<Certificate>& intermediates = {});

}  // namespace agrarsec::pki
