#include "pki/trust_store.h"

namespace agrarsec::pki {

core::Status TrustStore::add_root(const Certificate& root) {
  if (root.body.subject != root.body.issuer) {
    return core::make_error("not_self_signed", "root must be self-signed");
  }
  if (!root.body.usage.can_issue) {
    return core::make_error("not_a_ca", "root lacks issuing rights");
  }
  if (!root.verify_signature(root.body.signing_key)) {
    return core::make_error("bad_signature", "root self-signature invalid");
  }
  roots_[root.body.subject] = root;
  return core::Status::ok_status();
}

core::Status TrustStore::add_crl(const Crl& crl, const Certificate& issuer_cert) {
  if (issuer_cert.body.subject != crl.issuer) {
    return core::make_error("issuer_mismatch", "CRL issuer does not match certificate");
  }
  if (!crl.verify_signature(issuer_cert.body.signing_key)) {
    return core::make_error("bad_signature", "CRL signature invalid");
  }
  auto it = crls_.find(crl.issuer);
  if (it != crls_.end() && it->second.issued_at > crl.issued_at) {
    return core::make_error("stale_crl", "a newer CRL is already installed");
  }
  crls_[crl.issuer] = crl;
  return core::Status::ok_status();
}

bool TrustStore::revoked(const Certificate& cert) const {
  const auto it = crls_.find(cert.body.issuer);
  return it != crls_.end() && it->second.covers(cert.body.serial);
}

core::Result<Certificate> TrustStore::validate(const std::vector<Certificate>& chain,
                                               core::SimTime now,
                                               bool allow_ca_leaf) const {
  if (chain.empty()) {
    return core::make_error("empty_chain", "no certificates presented");
  }

  // Walk from the leaf up; each certificate must be signed by the next,
  // and the last must be signed by an installed root (or be a root).
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];

    if (!cert.valid_at(now)) {
      return core::make_error("expired",
                              "certificate '" + cert.body.subject +
                                  "' outside validity window");
    }
    if (revoked(cert)) {
      return core::make_error("revoked",
                              "certificate '" + cert.body.subject + "' is revoked");
    }

    const bool is_last = (i + 1 == chain.size());
    const Certificate* issuer = nullptr;
    if (!is_last) {
      issuer = &chain[i + 1];
    } else {
      const auto it = roots_.find(cert.body.issuer);
      if (it == roots_.end()) {
        return core::make_error("untrusted_root",
                                "issuer '" + cert.body.issuer + "' is not a trusted root");
      }
      issuer = &it->second;
      if (!issuer->valid_at(now)) {
        return core::make_error("expired", "trusted root outside validity window");
      }
    }

    if (issuer->body.subject != cert.body.issuer) {
      return core::make_error("issuer_mismatch",
                              "chain discontinuity at '" + cert.body.subject + "'");
    }
    if (!issuer->body.usage.can_issue) {
      return core::make_error("not_a_ca",
                              "issuer '" + issuer->body.subject + "' may not issue");
    }
    if (!cert.verify_signature(issuer->body.signing_key)) {
      return core::make_error("bad_signature",
                              "signature on '" + cert.body.subject + "' invalid");
    }

    // Path length: an issuing certificate at depth d above the leaf must
    // permit at least d-1 further CAs.
    if (i > 0) {
      const std::size_t cas_below = i - 1;  // CA certs strictly between
      if (cert.body.usage.can_issue &&
          cert.body.path_length < cas_below) {
        return core::make_error("path_length", "path length constraint violated");
      }
      if (!cert.body.usage.can_issue) {
        return core::make_error("not_a_ca",
                                "non-CA certificate used as issuer in chain");
      }
    }
  }

  const Certificate& leaf = chain.front();
  const bool leaf_is_ca = leaf.body.role == CertRole::kRootCa ||
                          leaf.body.role == CertRole::kIntermediateCa;
  if (leaf_is_ca && !allow_ca_leaf) {
    return core::make_error("ca_as_leaf", "CA certificate presented as end entity");
  }
  return leaf;
}

}  // namespace agrarsec::pki
