#include "pki/certificate.h"

#include <cstring>

#include "crypto/sha256.h"

namespace agrarsec::pki {

std::string_view cert_role_name(CertRole role) {
  switch (role) {
    case CertRole::kRootCa: return "root-ca";
    case CertRole::kIntermediateCa: return "intermediate-ca";
    case CertRole::kMachine: return "machine";
    case CertRole::kDrone: return "drone";
    case CertRole::kOperatorStation: return "operator-station";
    case CertRole::kSensorUnit: return "sensor-unit";
    case CertRole::kFirmwareSigner: return "firmware-signer";
  }
  return "?";
}

std::uint8_t KeyUsage::encode() const {
  return static_cast<std::uint8_t>((can_sign ? 1 : 0) | (can_key_agree ? 2 : 0) |
                                   (can_issue ? 4 : 0));
}

KeyUsage KeyUsage::decode(std::uint8_t bits) {
  return KeyUsage{(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0};
}

core::Bytes CertificateBody::encode_tbs() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-cert-v1"));
  core::append_le64(out, serial.value());
  core::append_framed(out, core::from_string(subject));
  core::append_framed(out, core::from_string(issuer));
  core::append_le64(out, issuer_serial.value());
  out.push_back(static_cast<std::uint8_t>(role));
  out.push_back(usage.encode());
  core::append_le64(out, static_cast<std::uint64_t>(not_before));
  core::append_le64(out, static_cast<std::uint64_t>(not_after));
  core::append(out, signing_key);
  core::append(out, agreement_key);
  out.push_back(path_length);
  return out;
}

bool Certificate::verify_signature(const crypto::Ed25519PublicKey& issuer_key) const {
  return crypto::ed25519_verify(issuer_key, body.encode_tbs(), signature);
}

bool Certificate::valid_at(core::SimTime now) const {
  return now >= body.not_before && now <= body.not_after;
}

core::Bytes Certificate::encode() const {
  core::Bytes out = body.encode_tbs();
  core::append(out, signature);
  return out;
}

namespace {
/// Cursor-based reader over the TBS encoding; every read checks bounds.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool read_magic(std::string_view magic) {
    if (remaining() < magic.size()) return false;
    if (std::memcmp(data_.data() + pos_, magic.data(), magic.size()) != 0) {
      return false;
    }
    pos_ += magic.size();
    return true;
  }
  bool read_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = data_[pos_++];
    return true;
  }
  bool read_le64(std::uint64_t& out) {
    if (remaining() < 8) return false;
    out = core::load_le64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool read_framed_string(std::string& out) {
    if (remaining() < 4) return false;
    const std::uint32_t len = core::load_be32(data_.data() + pos_);
    pos_ += 4;
    if (remaining() < len) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  template <std::size_t N>
  bool read_array(std::array<std::uint8_t, N>& out) {
    if (remaining() < N) return false;
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return true;
  }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};
}  // namespace

std::optional<Certificate> Certificate::decode(std::span<const std::uint8_t> data) {
  Reader reader{data};
  Certificate cert;
  CertificateBody& b = cert.body;

  if (!reader.read_magic("agrarsec-cert-v1")) return std::nullopt;
  std::uint64_t serial = 0, issuer_serial = 0, not_before = 0, not_after = 0;
  std::uint8_t role = 0, usage = 0, path_length = 0;
  if (!reader.read_le64(serial)) return std::nullopt;
  if (!reader.read_framed_string(b.subject)) return std::nullopt;
  if (!reader.read_framed_string(b.issuer)) return std::nullopt;
  if (!reader.read_le64(issuer_serial)) return std::nullopt;
  if (!reader.read_u8(role)) return std::nullopt;
  if (role > static_cast<std::uint8_t>(CertRole::kFirmwareSigner)) return std::nullopt;
  if (!reader.read_u8(usage)) return std::nullopt;
  if (usage > 7) return std::nullopt;
  if (!reader.read_le64(not_before)) return std::nullopt;
  if (!reader.read_le64(not_after)) return std::nullopt;
  if (!reader.read_array(b.signing_key)) return std::nullopt;
  if (!reader.read_array(b.agreement_key)) return std::nullopt;
  if (!reader.read_u8(path_length)) return std::nullopt;
  if (!reader.read_array(cert.signature)) return std::nullopt;
  if (reader.remaining() != 0) return std::nullopt;

  b.serial = CertSerial{serial};
  b.issuer_serial = CertSerial{issuer_serial};
  b.role = static_cast<CertRole>(role);
  b.usage = KeyUsage::decode(usage);
  b.not_before = static_cast<core::SimTime>(not_before);
  b.not_after = static_cast<core::SimTime>(not_after);
  b.path_length = path_length;
  return cert;
}

std::string Certificate::fingerprint() const {
  const auto digest = crypto::Sha256::hash(encode());
  return core::to_hex(std::span(digest.data(), 8));  // truncated for logs
}

}  // namespace agrarsec::pki
