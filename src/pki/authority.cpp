#include "pki/authority.h"

#include <algorithm>
#include <cstring>

namespace agrarsec::pki {

core::Bytes Crl::encode_tbs() const {
  core::Bytes out;
  core::append(out, core::from_string("agrarsec-crl-v1"));
  core::append_framed(out, core::from_string(issuer));
  core::append_le64(out, static_cast<std::uint64_t>(issued_at));
  core::append_le64(out, revoked_serials.size());
  for (std::uint64_t s : revoked_serials) core::append_le64(out, s);
  return out;
}

bool Crl::covers(CertSerial serial) const {
  return std::binary_search(revoked_serials.begin(), revoked_serials.end(),
                            serial.value());
}

bool Crl::verify_signature(const crypto::Ed25519PublicKey& issuer_key) const {
  return crypto::ed25519_verify(issuer_key, encode_tbs(), signature);
}

core::Bytes Crl::encode() const {
  core::Bytes out = encode_tbs();
  core::append(out, signature);
  return out;
}

std::optional<Crl> Crl::decode(std::span<const std::uint8_t> data) {
  constexpr std::string_view kMagic = "agrarsec-crl-v1";
  std::size_t pos = 0;
  if (data.size() < kMagic.size() ||
      std::memcmp(data.data(), kMagic.data(), kMagic.size()) != 0) {
    return std::nullopt;
  }
  pos += kMagic.size();

  Crl crl;
  if (data.size() - pos < 4) return std::nullopt;
  const std::uint32_t issuer_len = core::load_be32(data.data() + pos);
  pos += 4;
  if (data.size() - pos < issuer_len) return std::nullopt;
  crl.issuer.assign(reinterpret_cast<const char*>(data.data() + pos), issuer_len);
  pos += issuer_len;

  if (data.size() - pos < 16) return std::nullopt;
  crl.issued_at = static_cast<core::SimTime>(core::load_le64(data.data() + pos));
  pos += 8;
  const std::uint64_t count = core::load_le64(data.data() + pos);
  pos += 8;
  if (count > 1'000'000) return std::nullopt;  // sanity bound
  if (data.size() - pos < count * 8 + crl.signature.size()) return std::nullopt;
  crl.revoked_serials.reserve(count);
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t serial = core::load_le64(data.data() + pos);
    pos += 8;
    if (i > 0 && serial <= previous) return std::nullopt;  // must be sorted/unique
    previous = serial;
    crl.revoked_serials.push_back(serial);
  }
  if (data.size() - pos != crl.signature.size()) return std::nullopt;
  std::memcpy(crl.signature.data(), data.data() + pos, crl.signature.size());
  return crl;
}

CertificateAuthority::CertificateAuthority(Certificate cert,
                                           crypto::Ed25519KeyPair keypair,
                                           std::uint64_t first_serial)
    : certificate_(std::move(cert)), keypair_(keypair), next_serial_(first_serial) {}

CertificateAuthority CertificateAuthority::create_root(const std::string& name,
                                                       const crypto::Ed25519Seed& seed,
                                                       core::SimTime not_before,
                                                       core::SimTime not_after) {
  const auto keypair = crypto::ed25519_keypair(seed);
  CertificateBody body;
  body.serial = CertSerial{1};
  body.subject = name;
  body.issuer = name;
  body.issuer_serial = CertSerial{1};
  body.role = CertRole::kRootCa;
  body.usage = KeyUsage{.can_sign = true, .can_key_agree = false, .can_issue = true};
  body.not_before = not_before;
  body.not_after = not_after;
  body.signing_key = keypair.public_key;
  body.path_length = 2;

  Certificate cert;
  cert.body = std::move(body);
  cert.signature = crypto::ed25519_sign(keypair, cert.body.encode_tbs());
  return CertificateAuthority{std::move(cert), keypair, /*first_serial=*/2};
}

core::Result<CertificateAuthority> CertificateAuthority::create_intermediate(
    CertificateAuthority& parent, const std::string& name,
    const crypto::Ed25519Seed& seed, core::SimTime not_before,
    core::SimTime not_after) {
  if (!parent.certificate_.body.usage.can_issue) {
    return core::make_error("not_a_ca", "parent certificate lacks issuing rights");
  }
  if (parent.certificate_.body.path_length == 0) {
    return core::make_error("path_length", "parent CA path length exhausted");
  }
  const auto keypair = crypto::ed25519_keypair(seed);
  IssueRequest req;
  req.subject = name;
  req.role = CertRole::kIntermediateCa;
  req.usage = KeyUsage{.can_sign = true, .can_key_agree = false, .can_issue = true};
  req.not_before = not_before;
  req.not_after = not_after;
  req.signing_key = keypair.public_key;
  req.path_length = static_cast<std::uint8_t>(parent.certificate_.body.path_length - 1);

  auto cert = parent.issue(req);
  if (!cert.ok()) return cert.error();
  return CertificateAuthority{std::move(cert).take(), keypair,
                              /*first_serial=*/1'000'000 * parent.next_serial_};
}

Certificate CertificateAuthority::sign_body(CertificateBody body) {
  Certificate cert;
  cert.body = std::move(body);
  cert.signature = crypto::ed25519_sign(keypair_, cert.body.encode_tbs());
  return cert;
}

core::Result<Certificate> CertificateAuthority::issue(const IssueRequest& request) {
  if (!certificate_.body.usage.can_issue) {
    return core::make_error("not_a_ca", "this authority may not issue certificates");
  }
  if (request.not_after < request.not_before) {
    return core::make_error("bad_validity", "not_after precedes not_before");
  }
  const bool is_ca_cert = request.usage.can_issue;
  if (is_ca_cert && certificate_.body.path_length == 0) {
    return core::make_error("path_length", "CA path length exhausted");
  }
  if (is_ca_cert && request.role != CertRole::kIntermediateCa &&
      request.role != CertRole::kRootCa) {
    return core::make_error("role_mismatch", "issuing rights require a CA role");
  }

  CertificateBody body;
  body.serial = CertSerial{next_serial_++};
  body.subject = request.subject;
  body.issuer = certificate_.body.subject;
  body.issuer_serial = certificate_.body.serial;
  body.role = request.role;
  body.usage = request.usage;
  body.not_before = request.not_before;
  body.not_after = request.not_after;
  body.signing_key = request.signing_key;
  body.agreement_key = request.agreement_key;
  body.path_length = request.path_length;
  ++issued_;
  return sign_body(std::move(body));
}

void CertificateAuthority::revoke(CertSerial serial) { revoked_.insert(serial.value()); }

Crl CertificateAuthority::current_crl(core::SimTime now) const {
  Crl crl;
  crl.issuer = certificate_.body.subject;
  crl.issued_at = now;
  crl.revoked_serials.assign(revoked_.begin(), revoked_.end());
  crl.signature = crypto::ed25519_sign(keypair_, crl.encode_tbs());
  return crl;
}

}  // namespace agrarsec::pki
