// Field arithmetic modulo p = 2^255 - 19 with five 51-bit limbs
// (unsigned __int128 products). Internal header shared by the X25519 and
// Ed25519 implementations; not part of the public crypto API.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace agrarsec::crypto::detail {

/// Field element: f[0] + f[1]*2^51 + ... + f[4]*2^204, limbs < 2^52-ish
/// between reductions.
struct Fe {
  std::uint64_t v[5];
};

inline constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

inline Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
inline Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

inline void fe_copy(Fe& h, const Fe& f) { h = f; }

inline void fe_add(Fe& h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 5; ++i) h.v[i] = f.v[i] + g.v[i];
}

/// h = f - g, with bias 2*p added so limbs stay non-negative.
inline void fe_sub(Fe& h, const Fe& f, const Fe& g) {
  // 2*p in 51-bit limbs: (2^255-19)*2 = limbs {2^52-38, 2^52-2, ...}
  static constexpr std::uint64_t kTwoP0 = 0xFFFFFFFFFFFDAULL;  // 2*(2^51-19)
  static constexpr std::uint64_t kTwoP1234 = 0xFFFFFFFFFFFFEULL;  // 2*(2^51-1)
  h.v[0] = f.v[0] + kTwoP0 - g.v[0];
  h.v[1] = f.v[1] + kTwoP1234 - g.v[1];
  h.v[2] = f.v[2] + kTwoP1234 - g.v[2];
  h.v[3] = f.v[3] + kTwoP1234 - g.v[3];
  h.v[4] = f.v[4] + kTwoP1234 - g.v[4];
}

/// Weak reduction: brings limbs below ~2^52.
inline void fe_carry(Fe& h) {
  std::uint64_t c;
  c = h.v[0] >> 51; h.v[0] &= kMask51; h.v[1] += c;
  c = h.v[1] >> 51; h.v[1] &= kMask51; h.v[2] += c;
  c = h.v[2] >> 51; h.v[2] &= kMask51; h.v[3] += c;
  c = h.v[3] >> 51; h.v[3] &= kMask51; h.v[4] += c;
  c = h.v[4] >> 51; h.v[4] &= kMask51; h.v[0] += c * 19;
  c = h.v[0] >> 51; h.v[0] &= kMask51; h.v[1] += c;
}

inline void fe_mul(Fe& h, const Fe& f, const Fe& g) {
  using u128 = unsigned __int128;
  const std::uint64_t f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const std::uint64_t g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const std::uint64_t g1_19 = g1 * 19, g2_19 = g2 * 19, g3_19 = g3 * 19, g4_19 = g4 * 19;

  u128 h0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 + (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 h1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 + (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 h2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 + (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 h3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 + (u128)f4 * g4_19;
  u128 h4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 + (u128)f4 * g0;

  std::uint64_t c;
  std::uint64_t r0 = (std::uint64_t)h0 & kMask51; c = (std::uint64_t)(h0 >> 51);
  h1 += c;
  std::uint64_t r1 = (std::uint64_t)h1 & kMask51; c = (std::uint64_t)(h1 >> 51);
  h2 += c;
  std::uint64_t r2 = (std::uint64_t)h2 & kMask51; c = (std::uint64_t)(h2 >> 51);
  h3 += c;
  std::uint64_t r3 = (std::uint64_t)h3 & kMask51; c = (std::uint64_t)(h3 >> 51);
  h4 += c;
  std::uint64_t r4 = (std::uint64_t)h4 & kMask51; c = (std::uint64_t)(h4 >> 51);
  r0 += c * 19; c = r0 >> 51; r0 &= kMask51;
  r1 += c;

  h.v[0] = r0; h.v[1] = r1; h.v[2] = r2; h.v[3] = r3; h.v[4] = r4;
}

inline void fe_sq(Fe& h, const Fe& f) { fe_mul(h, f, f); }

inline void fe_mul_small(Fe& h, const Fe& f, std::uint64_t s) {
  using u128 = unsigned __int128;
  u128 a0 = (u128)f.v[0] * s;
  u128 a1 = (u128)f.v[1] * s;
  u128 a2 = (u128)f.v[2] * s;
  u128 a3 = (u128)f.v[3] * s;
  u128 a4 = (u128)f.v[4] * s;
  std::uint64_t c;
  std::uint64_t r0 = (std::uint64_t)a0 & kMask51; c = (std::uint64_t)(a0 >> 51);
  a1 += c;
  std::uint64_t r1 = (std::uint64_t)a1 & kMask51; c = (std::uint64_t)(a1 >> 51);
  a2 += c;
  std::uint64_t r2 = (std::uint64_t)a2 & kMask51; c = (std::uint64_t)(a2 >> 51);
  a3 += c;
  std::uint64_t r3 = (std::uint64_t)a3 & kMask51; c = (std::uint64_t)(a3 >> 51);
  a4 += c;
  std::uint64_t r4 = (std::uint64_t)a4 & kMask51; c = (std::uint64_t)(a4 >> 51);
  r0 += c * 19; c = r0 >> 51; r0 &= kMask51;
  r1 += c;
  h.v[0] = r0; h.v[1] = r1; h.v[2] = r2; h.v[3] = r3; h.v[4] = r4;
}

/// Full reduction to canonical form (< p) and serialization.
inline void fe_tobytes(std::uint8_t out[32], const Fe& f) {
  Fe t = f;
  fe_carry(t);
  fe_carry(t);

  // Freeze: add 19, propagate, then drop the top bit and subtract.
  std::uint64_t q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;

  t.v[0] += 19 * q;
  std::uint64_t c;
  c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
  c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
  c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
  c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
  t.v[4] &= kMask51;

  const std::uint64_t w0 = t.v[0] | (t.v[1] << 51);
  const std::uint64_t w1 = (t.v[1] >> 13) | (t.v[2] << 38);
  const std::uint64_t w2 = (t.v[2] >> 26) | (t.v[3] << 25);
  const std::uint64_t w3 = (t.v[3] >> 39) | (t.v[4] << 12);
  std::memcpy(out + 0, &w0, 8);
  std::memcpy(out + 8, &w1, 8);
  std::memcpy(out + 16, &w2, 8);
  std::memcpy(out + 24, &w3, 8);
}

inline void fe_frombytes(Fe& h, const std::uint8_t in[32]) {
  std::uint64_t w0, w1, w2, w3;
  std::memcpy(&w0, in + 0, 8);
  std::memcpy(&w1, in + 8, 8);
  std::memcpy(&w2, in + 16, 8);
  std::memcpy(&w3, in + 24, 8);
  h.v[0] = w0 & kMask51;
  h.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
  h.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
  h.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
  h.v[4] = (w3 >> 12) & kMask51;  // top bit ignored per both RFCs
}

/// Constant-time conditional swap on bit `b`.
inline void fe_cswap(Fe& f, Fe& g, std::uint64_t b) {
  const std::uint64_t mask = 0 - b;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (f.v[i] ^ g.v[i]);
    f.v[i] ^= x;
    g.v[i] ^= x;
  }
}

/// h = f^(p-2) = f^-1 (Fermat), fixed addition chain.
inline void fe_invert(Fe& out, const Fe& z) {
  Fe z2, z9, z11, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t;
  fe_sq(z2, z);                    // 2
  fe_sq(t, z2); fe_sq(t, t);       // 8
  fe_mul(z9, t, z);                // 9
  fe_mul(z11, z9, z2);             // 11
  fe_sq(t, z11);                   // 22
  fe_mul(z2_5_0, t, z9);           // 2^5 - 1
  fe_sq(t, z2_5_0);
  for (int i = 1; i < 5; ++i) fe_sq(t, t);
  fe_mul(z2_10_0, t, z2_5_0);      // 2^10 - 1
  fe_sq(t, z2_10_0);
  for (int i = 1; i < 10; ++i) fe_sq(t, t);
  fe_mul(z2_20_0, t, z2_10_0);     // 2^20 - 1
  fe_sq(t, z2_20_0);
  for (int i = 1; i < 20; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_20_0);           // 2^40 - 1
  fe_sq(t, t);
  for (int i = 1; i < 10; ++i) fe_sq(t, t);
  fe_mul(z2_50_0, t, z2_10_0);     // 2^50 - 1
  fe_sq(t, z2_50_0);
  for (int i = 1; i < 50; ++i) fe_sq(t, t);
  fe_mul(z2_100_0, t, z2_50_0);    // 2^100 - 1
  fe_sq(t, z2_100_0);
  for (int i = 1; i < 100; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_100_0);          // 2^200 - 1
  fe_sq(t, t);
  for (int i = 1; i < 50; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_50_0);           // 2^250 - 1
  fe_sq(t, t); fe_sq(t, t); fe_sq(t, t); fe_sq(t, t); fe_sq(t, t);
  fe_mul(out, t, z11);             // 2^255 - 21 = p - 2
}

/// h = f^((p-5)/8) = f^(2^252 - 3); used for square roots in Ed25519
/// decompression.
inline void fe_pow22523(Fe& out, const Fe& z) {
  Fe z2, z9, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t;
  fe_sq(z2, z);
  fe_sq(t, z2); fe_sq(t, t);
  fe_mul(z9, t, z);
  fe_mul(t, z9, z2);               // z11
  fe_sq(t, t);
  fe_mul(z2_5_0, t, z9);
  fe_sq(t, z2_5_0);
  for (int i = 1; i < 5; ++i) fe_sq(t, t);
  fe_mul(z2_10_0, t, z2_5_0);
  fe_sq(t, z2_10_0);
  for (int i = 1; i < 10; ++i) fe_sq(t, t);
  fe_mul(z2_20_0, t, z2_10_0);
  fe_sq(t, z2_20_0);
  for (int i = 1; i < 20; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_20_0);
  fe_sq(t, t);
  for (int i = 1; i < 10; ++i) fe_sq(t, t);
  fe_mul(z2_50_0, t, z2_10_0);
  fe_sq(t, z2_50_0);
  for (int i = 1; i < 50; ++i) fe_sq(t, t);
  fe_mul(z2_100_0, t, z2_50_0);
  fe_sq(t, z2_100_0);
  for (int i = 1; i < 100; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_100_0);
  fe_sq(t, t);
  for (int i = 1; i < 50; ++i) fe_sq(t, t);
  fe_mul(t, t, z2_50_0);           // 2^250 - 1
  fe_sq(t, t); fe_sq(t, t);
  fe_mul(out, t, z);               // 2^252 - 3
}

inline bool fe_is_zero(const Fe& f) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, f);
  std::uint8_t acc = 0;
  for (std::uint8_t b : bytes) acc |= b;
  return acc == 0;
}

inline bool fe_is_negative(const Fe& f) {
  std::uint8_t bytes[32];
  fe_tobytes(bytes, f);
  return (bytes[0] & 1) != 0;
}

inline void fe_neg(Fe& h, const Fe& f) {
  const Fe zero = fe_zero();
  fe_sub(h, zero, f);
  fe_carry(h);
}

}  // namespace agrarsec::crypto::detail
