// Deterministic DRBG for the simulation: HMAC-SHA256 in counter mode
// (an HKDF-expand stream). Real deployments would seed from hardware
// entropy; the simulator seeds from the run seed so that handshakes and
// nonces are reproducible, which the experiment harnesses rely on.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "core/bytes.h"

namespace agrarsec::crypto {

class Drbg {
 public:
  /// Seeds from a 64-bit simulation seed plus a domain-separation label.
  Drbg(std::uint64_t seed, std::string_view label);

  /// Fills `n` pseudo-random bytes.
  core::Bytes generate(std::size_t n);

  /// Convenience: 32-byte value (key/seed sized).
  std::array<std::uint8_t, 32> generate32();

 private:
  std::array<std::uint8_t, 32> key_;
  std::uint64_t counter_ = 0;
};

}  // namespace agrarsec::crypto
