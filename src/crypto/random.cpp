#include "crypto/random.h"

#include <array>
#include <cstring>

#include "crypto/hmac.h"

namespace agrarsec::crypto {

Drbg::Drbg(std::uint64_t seed, std::string_view label) {
  core::Bytes ikm;
  core::append_le64(ikm, seed);
  ikm.insert(ikm.end(), label.begin(), label.end());
  const auto digest = HmacSha256::mac(core::from_string("agrarsec-drbg-v1"), ikm);
  std::memcpy(key_.data(), digest.data(), key_.size());
}

core::Bytes Drbg::generate(std::size_t n) {
  core::Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    core::Bytes block_input;
    core::append_le64(block_input, counter_++);
    const auto block = HmacSha256::mac(key_, block_input);
    const std::size_t take = std::min(block.size(), n - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

std::array<std::uint8_t, 32> Drbg::generate32() {
  const auto bytes = generate(32);
  std::array<std::uint8_t, 32> out{};
  std::memcpy(out.data(), bytes.data(), 32);
  return out;
}

}  // namespace agrarsec::crypto
