// ChaCha20 stream cipher (RFC 8439 §2.4). Verified against the RFC test
// vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "core/bytes.h"

namespace agrarsec::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t initial_counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data);

  /// Produces one 64-byte keystream block at the given counter (used by
  /// Poly1305 one-time-key generation).
  static std::array<std::uint8_t, kBlockSize> block(std::span<const std::uint8_t> key,
                                                    std::span<const std::uint8_t> nonce,
                                                    std::uint32_t counter);

  /// One-shot encrypt/decrypt returning a new buffer.
  static core::Bytes crypt(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> nonce, std::uint32_t counter,
                           std::span<const std::uint8_t> data);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> keystream_;
  std::size_t keystream_used_ = kBlockSize;
};

}  // namespace agrarsec::crypto
