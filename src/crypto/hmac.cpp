#include "crypto/hmac.h"

#include <cstring>

#include "core/bytes.h"

namespace agrarsec::crypto {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, Sha256::kBlockSize> block_key{};
  if (key.size() > Sha256::kBlockSize) {
    const auto digest = Sha256::hash(key);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockSize> ipad_key{};
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.update(ipad_key);
}

void HmacSha256::update(std::span<const std::uint8_t> data) { inner_.update(data); }

HmacSha256::Tag HmacSha256::finish() {
  const auto inner_digest = inner_.finish();
  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finish();
}

HmacSha256::Tag HmacSha256::mac(std::span<const std::uint8_t> key,
                                std::span<const std::uint8_t> data) {
  HmacSha256 h{key};
  h.update(data);
  return h.finish();
}

bool HmacSha256::verify(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> data,
                        std::span<const std::uint8_t> tag) {
  const Tag expected = mac(key, data);
  return core::constant_time_equal(expected, tag);
}

}  // namespace agrarsec::crypto
