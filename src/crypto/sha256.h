// SHA-256 (FIPS 180-4). Incremental interface plus one-shot helpers.
// Verified against the FIPS/NIST test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "core/bytes.h"

namespace agrarsec::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] Digest finish();  ///< finalizes; object must be reset() before reuse
  void reset();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace agrarsec::crypto
