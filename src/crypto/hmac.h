// HMAC-SHA256 (RFC 2104 / FIPS 198-1). Verified against RFC 4231 vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/sha256.h"

namespace agrarsec::crypto {

class HmacSha256 {
 public:
  static constexpr std::size_t kTagSize = Sha256::kDigestSize;
  using Tag = Sha256::Digest;

  explicit HmacSha256(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] Tag finish();

  /// One-shot MAC.
  static Tag mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

  /// Constant-time verification of a received tag.
  static bool verify(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data,
                     std::span<const std::uint8_t> tag);

 private:
  Sha256 inner_;
  std::array<std::uint8_t, Sha256::kBlockSize> opad_key_{};
};

}  // namespace agrarsec::crypto
