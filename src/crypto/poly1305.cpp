#include "crypto/poly1305.h"

#include <cstring>
#include <stdexcept>

#include "core/bytes.h"

namespace agrarsec::crypto {

Poly1305::Poly1305(std::span<const std::uint8_t> key) {
  if (key.size() != kKeySize) throw std::invalid_argument("Poly1305: key must be 32 bytes");
  // r with clamping (RFC 8439 §2.5.1), split into 26-bit limbs.
  const std::uint32_t t0 = core::load_le32(key.data() + 0);
  const std::uint32_t t1 = core::load_le32(key.data() + 4);
  const std::uint32_t t2 = core::load_le32(key.data() + 8);
  const std::uint32_t t3 = core::load_le32(key.data() + 12);
  r_[0] = t0 & 0x3ffffff;
  r_[1] = ((t0 >> 26) | (t1 << 6)) & 0x3ffff03;
  r_[2] = ((t1 >> 20) | (t2 << 12)) & 0x3ffc0ff;
  r_[3] = ((t2 >> 14) | (t3 << 18)) & 0x3f03fff;
  r_[4] = (t3 >> 8) & 0x00fffff;

  h_[0] = h_[1] = h_[2] = h_[3] = h_[4] = 0;
  for (int i = 0; i < 4; ++i) pad_[i] = core::load_le32(key.data() + 16 + 4 * i);
}

void Poly1305::process_block(const std::uint8_t* block, bool final_partial,
                             std::size_t len) {
  std::uint8_t padded[17] = {0};
  std::uint32_t hibit = 1 << 24;  // 2^128 bit for full blocks
  const std::uint8_t* p = block;
  if (final_partial) {
    std::memcpy(padded, block, len);
    padded[len] = 1;  // append the 1 byte, hibit folded into limb math below
    hibit = 0;
    p = padded;
  }

  h_[0] += core::load_le32(p + 0) & 0x3ffffff;
  h_[1] += (core::load_le32(p + 3) >> 2) & 0x3ffffff;
  h_[2] += (core::load_le32(p + 6) >> 4) & 0x3ffffff;
  h_[3] += (core::load_le32(p + 9) >> 6) & 0x3ffffff;
  h_[4] += (core::load_le32(p + 12) >> 8) | hibit;
  if (final_partial) {
    // The appended 0x01 byte lives at position len; bytes beyond are zero,
    // so the loads above already account for it.
  }

  const std::uint64_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const std::uint64_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;
  const std::uint64_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  std::uint64_t d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
  std::uint64_t d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
  std::uint64_t d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
  std::uint64_t d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
  std::uint64_t d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

  std::uint64_t c = d0 >> 26; d0 &= 0x3ffffff;
  d1 += c; c = d1 >> 26; d1 &= 0x3ffffff;
  d2 += c; c = d2 >> 26; d2 &= 0x3ffffff;
  d3 += c; c = d3 >> 26; d3 &= 0x3ffffff;
  d4 += c; c = d4 >> 26; d4 &= 0x3ffffff;
  d0 += c * 5; c = d0 >> 26; d0 &= 0x3ffffff;
  d1 += c;

  h_[0] = static_cast<std::uint32_t>(d0);
  h_[1] = static_cast<std::uint32_t>(d1);
  h_[2] = static_cast<std::uint32_t>(d2);
  h_[3] = static_cast<std::uint32_t>(d3);
  h_[4] = static_cast<std::uint32_t>(d4);
}

void Poly1305::update(std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min<std::size_t>(16 - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 16) {
      process_block(buffer_.data(), false, 16);
      buffered_ = 0;
    }
  }
  while (offset + 16 <= data.size()) {
    process_block(data.data() + offset, false, 16);
    offset += 16;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Poly1305::Tag Poly1305::finish() {
  if (buffered_ > 0) {
    process_block(buffer_.data(), true, buffered_);
    buffered_ = 0;
  }

  // Full carry propagation.
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c = h1 >> 26; h1 &= 0x3ffffff;
  h2 += c; c = h2 >> 26; h2 &= 0x3ffffff;
  h3 += c; c = h3 >> 26; h3 &= 0x3ffffff;
  h4 += c; c = h4 >> 26; h4 &= 0x3ffffff;
  h0 += c * 5; c = h0 >> 26; h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and select.
  std::uint32_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1 << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Serialize to 128 bits and add the pad.
  const std::uint32_t w0 = h0 | (h1 << 26);
  const std::uint32_t w1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t w2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t w3 = (h3 >> 18) | (h4 << 8);

  std::uint64_t f = static_cast<std::uint64_t>(w0) + pad_[0];
  Tag tag{};
  core::store_le32(tag.data() + 0, static_cast<std::uint32_t>(f));
  f = (f >> 32) + static_cast<std::uint64_t>(w1) + pad_[1];
  core::store_le32(tag.data() + 4, static_cast<std::uint32_t>(f));
  f = (f >> 32) + static_cast<std::uint64_t>(w2) + pad_[2];
  core::store_le32(tag.data() + 8, static_cast<std::uint32_t>(f));
  f = (f >> 32) + static_cast<std::uint64_t>(w3) + pad_[3];
  core::store_le32(tag.data() + 12, static_cast<std::uint32_t>(f));
  return tag;
}

Poly1305::Tag Poly1305::mac(std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> data) {
  Poly1305 p{key};
  p.update(data);
  return p.finish();
}

}  // namespace agrarsec::crypto
