#include "crypto/aead.h"

#include <stdexcept>

#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace agrarsec::crypto {

namespace {

Poly1305::Tag compute_tag(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> nonce,
                          std::span<const std::uint8_t> aad,
                          std::span<const std::uint8_t> ciphertext) {
  // One-time Poly1305 key = first 32 bytes of ChaCha20 block 0.
  const auto block0 = ChaCha20::block(key, nonce, 0);
  Poly1305 mac{std::span(block0.data(), 32)};

  static constexpr std::uint8_t kZeros[16] = {0};
  mac.update(aad);
  if (aad.size() % 16 != 0) mac.update({kZeros, 16 - aad.size() % 16});
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) mac.update({kZeros, 16 - ciphertext.size() % 16});

  std::uint8_t lengths[16];
  core::store_le64(lengths, aad.size());
  core::store_le64(lengths + 8, ciphertext.size());
  mac.update(lengths);
  return mac.finish();
}

}  // namespace

core::Bytes aead_seal(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> nonce,
                      std::span<const std::uint8_t> aad,
                      std::span<const std::uint8_t> plaintext) {
  if (key.size() != kAeadKeySize) throw std::invalid_argument("aead_seal: bad key size");
  if (nonce.size() != kAeadNonceSize) throw std::invalid_argument("aead_seal: bad nonce size");

  core::Bytes out = ChaCha20::crypt(key, nonce, 1, plaintext);
  const auto tag = compute_tag(key, nonce, aad, out);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

core::Result<core::Bytes> aead_open(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> nonce,
                                    std::span<const std::uint8_t> aad,
                                    std::span<const std::uint8_t> sealed) {
  if (key.size() != kAeadKeySize) return core::make_error("bad_key", "aead_open: bad key size");
  if (nonce.size() != kAeadNonceSize) {
    return core::make_error("bad_nonce", "aead_open: bad nonce size");
  }
  if (sealed.size() < kAeadTagSize) {
    return core::make_error("bad_length", "aead_open: input shorter than tag");
  }
  const auto ciphertext = sealed.subspan(0, sealed.size() - kAeadTagSize);
  const auto tag = sealed.subspan(sealed.size() - kAeadTagSize);

  const auto expected = compute_tag(key, nonce, aad, ciphertext);
  if (!core::constant_time_equal(expected, tag)) {
    return core::make_error("bad_mac", "aead_open: authentication failed");
  }
  return ChaCha20::crypt(key, nonce, 1, ciphertext);
}

}  // namespace agrarsec::crypto
