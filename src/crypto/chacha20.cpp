#include "crypto/chacha20.h"

#include <bit>
#include <stdexcept>

namespace agrarsec::crypto {

namespace {
inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void core_block(const std::array<std::uint32_t, 16>& input,
                std::array<std::uint8_t, ChaCha20::kBlockSize>& out) {
  std::array<std::uint32_t, 16> x = input;
  for (int i = 0; i < 10; ++i) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    core::store_le32(out.data() + 4 * i, x[i] + input[i]);
  }
}
}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                   std::uint32_t initial_counter) {
  if (key.size() != kKeySize) throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  if (nonce.size() != kNonceSize) throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = core::load_le32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = core::load_le32(nonce.data() + 4 * i);
}

void ChaCha20::refill() {
  core_block(state_, keystream_);
  ++state_[12];
  keystream_used_ = 0;
}

void ChaCha20::apply(std::span<std::uint8_t> data) {
  for (std::uint8_t& byte : data) {
    if (keystream_used_ == kBlockSize) refill();
    byte ^= keystream_[keystream_used_++];
  }
}

std::array<std::uint8_t, ChaCha20::kBlockSize> ChaCha20::block(
    std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
    std::uint32_t counter) {
  ChaCha20 c{key, nonce, counter};
  std::array<std::uint8_t, kBlockSize> out;
  core_block(c.state_, out);
  return out;
}

core::Bytes ChaCha20::crypt(std::span<const std::uint8_t> key,
                            std::span<const std::uint8_t> nonce, std::uint32_t counter,
                            std::span<const std::uint8_t> data) {
  core::Bytes out(data.begin(), data.end());
  ChaCha20 c{key, nonce, counter};
  c.apply(out);
  return out;
}

}  // namespace agrarsec::crypto
