// SHA-512 (FIPS 180-4). Required by Ed25519 (RFC 8032). Incremental
// interface mirrors Sha256.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace agrarsec::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();

  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] Digest finish();
  void reset();

  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;  // messages < 2^64 bytes (ample here)
};

}  // namespace agrarsec::crypto
