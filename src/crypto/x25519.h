// X25519 Diffie–Hellman (RFC 7748). Constant-time Montgomery ladder.
// Verified against the RFC 7748 test vectors (including the 1k-iteration
// vector) in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace agrarsec::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// scalar * u-coordinate. `scalar` is clamped per RFC 7748.
[[nodiscard]] X25519Key x25519(std::span<const std::uint8_t> scalar,
                               std::span<const std::uint8_t> u);

/// Public key derivation: scalar * base point (u = 9).
[[nodiscard]] X25519Key x25519_base(std::span<const std::uint8_t> scalar);

/// Shared secret; returns false (and zeros `out`) when the result is the
/// all-zero value (low-order point contribution), which callers MUST treat
/// as a handshake failure.
bool x25519_shared(std::span<const std::uint8_t> private_key,
                   std::span<const std::uint8_t> peer_public, X25519Key& out);

}  // namespace agrarsec::crypto
