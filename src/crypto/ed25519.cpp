#include "crypto/ed25519.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "crypto/field25519.h"
#include "crypto/sha512.h"

namespace agrarsec::crypto {

namespace {

using detail::Fe;

// --- Edwards curve points, extended coordinates (X:Y:Z:T), x*y = T*Z. ---

struct GePoint {
  Fe x, y, z, t;
};

// d = -121665/121666 mod p.
const Fe kD = {{0x34dca135978a3ULL, 0x1a8283b156ebdULL, 0x5e7a26001c029ULL,
                0x739c663a03cbbULL, 0x52036cee2b6ffULL}};
// 2*d
const Fe kD2 = {{0x69b9426b2f159ULL, 0x35050762add7aULL, 0x3cf44c0038052ULL,
                 0x6738cc7407977ULL, 0x2406d9dc56dffULL}};
// sqrt(-1) = 2^((p-1)/4)
const Fe kSqrtM1 = {{0x61b274a0ea0b0ULL, 0xd5a5fc8f189dULL, 0x7ef5e9cbd0c60ULL,
                     0x78595a6804c9eULL, 0x2b8324804fc1dULL}};

GePoint ge_identity() {
  return GePoint{detail::fe_zero(), detail::fe_one(), detail::fe_one(), detail::fe_zero()};
}

/// Base point B (x, 4/5) with x positive.
GePoint ge_base() {
  // Canonical encoding of B's y = 4/5; x recovered sign-positive.
  static const Fe bx = {{0x62d608f25d51aULL, 0x412a4b4f6592aULL, 0x75b7171a4b31dULL,
                         0x1ff60527118feULL, 0x216936d3cd6e5ULL}};
  static const Fe by = {{0x6666666666658ULL, 0x4ccccccccccccULL, 0x1999999999999ULL,
                         0x3333333333333ULL, 0x6666666666666ULL}};
  GePoint p;
  p.x = bx;
  p.y = by;
  p.z = detail::fe_one();
  detail::fe_mul(p.t, bx, by);
  return p;
}

/// Unified point addition (RFC 8032 §5.1.4 formulas, extended coords).
GePoint ge_add(const GePoint& p, const GePoint& q) {
  Fe a, b, c, d, e, f, g, h, t;
  detail::fe_sub(t, p.y, p.x);
  detail::fe_carry(t);
  Fe t2;
  detail::fe_sub(t2, q.y, q.x);
  detail::fe_carry(t2);
  detail::fe_mul(a, t, t2);                    // A = (Y1-X1)(Y2-X2)
  detail::fe_add(t, p.y, p.x);
  detail::fe_carry(t);
  detail::fe_add(t2, q.y, q.x);
  detail::fe_carry(t2);
  detail::fe_mul(b, t, t2);                    // B = (Y1+X1)(Y2+X2)
  detail::fe_mul(c, p.t, q.t);
  detail::fe_mul(c, c, kD2);                   // C = 2 d T1 T2
  detail::fe_mul(d, p.z, q.z);
  detail::fe_add(d, d, d);                     // D = 2 Z1 Z2
  detail::fe_carry(d);
  detail::fe_sub(e, b, a);                     // E = B - A
  detail::fe_carry(e);
  detail::fe_sub(f, d, c);                     // F = D - C
  detail::fe_carry(f);
  detail::fe_add(g, d, c);                     // G = D + C
  detail::fe_carry(g);
  detail::fe_add(h, b, a);                     // H = B + A
  detail::fe_carry(h);

  GePoint r;
  detail::fe_mul(r.x, e, f);
  detail::fe_mul(r.y, g, h);
  detail::fe_mul(r.t, e, h);
  detail::fe_mul(r.z, f, g);
  return r;
}

GePoint ge_double(const GePoint& p) { return ge_add(p, p); }

GePoint ge_neg(const GePoint& p) {
  GePoint r;
  detail::fe_neg(r.x, p.x);
  r.y = p.y;
  r.z = p.z;
  detail::fe_neg(r.t, p.t);
  return r;
}

/// scalar (little-endian 32 bytes) * point, simple double-and-add MSB-first.
/// Not constant-time; adequate for the simulated ECUs (constant-time
/// scalar-base multiplication would use a fixed window table).
GePoint ge_scalar_mul(std::span<const std::uint8_t> scalar, const GePoint& p) {
  GePoint r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_double(r);
    if ((scalar[static_cast<std::size_t>(i / 8)] >> (i & 7)) & 1) {
      r = ge_add(r, p);
    }
  }
  return r;
}

void ge_tobytes(std::uint8_t out[32], const GePoint& p) {
  Fe recip, x, y;
  detail::fe_invert(recip, p.z);
  detail::fe_mul(x, p.x, recip);
  detail::fe_mul(y, p.y, recip);
  detail::fe_tobytes(out, y);
  out[31] ^= static_cast<std::uint8_t>(detail::fe_is_negative(x) ? 0x80 : 0x00);
}

/// Decompresses a point; returns false when no square root exists.
bool ge_frombytes(GePoint& p, const std::uint8_t in[32]) {
  Fe y;
  detail::fe_frombytes(y, in);
  const bool x_sign = (in[31] & 0x80) != 0;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  Fe y2, u, v;
  detail::fe_sq(y2, y);
  detail::fe_sub(u, y2, detail::fe_one());
  detail::fe_carry(u);
  detail::fe_mul(v, y2, kD);
  detail::fe_add(v, v, detail::fe_one());
  detail::fe_carry(v);

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8)
  Fe v3, v7, t, x;
  detail::fe_sq(v3, v);
  detail::fe_mul(v3, v3, v);
  detail::fe_sq(v7, v3);
  detail::fe_mul(v7, v7, v);
  detail::fe_mul(t, u, v7);
  detail::fe_pow22523(t, t);
  detail::fe_mul(x, t, v3);
  detail::fe_mul(x, x, u);

  // Check v x^2 == u or v x^2 == -u.
  Fe vx2, diff, sum;
  detail::fe_sq(vx2, x);
  detail::fe_mul(vx2, vx2, v);
  detail::fe_sub(diff, vx2, u);
  detail::fe_carry(diff);
  detail::fe_add(sum, vx2, u);
  detail::fe_carry(sum);

  if (!detail::fe_is_zero(diff)) {
    if (!detail::fe_is_zero(sum)) return false;
    detail::fe_mul(x, x, kSqrtM1);
  }

  if (detail::fe_is_zero(x) && x_sign) return false;  // x = 0 with sign bit: invalid
  if (detail::fe_is_negative(x) != x_sign) {
    detail::fe_neg(x, x);
  }

  p.x = x;
  p.y = y;
  p.z = detail::fe_one();
  detail::fe_mul(p.t, x, y);
  return true;
}

// --- Scalar arithmetic modulo the group order L. ---
// L = 2^252 + 27742317777372353535851937790883648493.

// Minimal big-unsigned helpers over base-2^32 little-endian vectors, only
// what mod-L arithmetic needs. Sizes are tiny (<= 16 words), so schoolbook
// algorithms are plenty.
using Big = std::vector<std::uint32_t>;

Big big_from_bytes_le(std::span<const std::uint8_t> bytes) {
  Big out((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  while (out.size() > 1 && out.back() == 0) out.pop_back();
  return out;
}

void big_to_bytes32_le(const Big& x, std::uint8_t out[32]) {
  std::memset(out, 0, 32);
  for (std::size_t i = 0; i < x.size() && i * 4 < 32; ++i) {
    for (std::size_t b = 0; b < 4 && i * 4 + b < 32; ++b) {
      out[i * 4 + b] = static_cast<std::uint8_t>(x[i] >> (8 * b));
    }
  }
}

int big_cmp(const Big& a, const Big& b) {
  std::size_t na = a.size(), nb = b.size();
  while (na > 1 && a[na - 1] == 0) --na;
  while (nb > 1 && b[nb - 1] == 0) --nb;
  if (na != nb) return na < nb ? -1 : 1;
  for (std::size_t i = na; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Big big_add(const Big& a, const Big& b) {
  Big out(std::max(a.size(), b.size()) + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::uint64_t s = carry;
    if (i < a.size()) s += a[i];
    if (i < b.size()) s += b[i];
    out[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  while (out.size() > 1 && out.back() == 0) out.pop_back();
  return out;
}

/// a - b; requires a >= b.
Big big_sub(const Big& a, const Big& b) {
  Big out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a[i]) - borrow -
                     (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (d < 0) {
      d += std::int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<std::uint32_t>(d);
  }
  while (out.size() > 1 && out.back() == 0) out.pop_back();
  return out;
}

Big big_mul(const Big& a, const Big& b) {
  Big out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = out[i + j] + static_cast<std::uint64_t>(a[i]) * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  while (out.size() > 1 && out.back() == 0) out.pop_back();
  return out;
}

Big big_shift_words(const Big& a, std::size_t words) {
  Big out(a.size() + words, 0);
  std::copy(a.begin(), a.end(), out.begin() + static_cast<std::ptrdiff_t>(words));
  return out;
}

const Big& big_l() {
  // L little-endian.
  static const Big l = [] {
    const std::uint8_t bytes[32] = {
        0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
        0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    return big_from_bytes_le(bytes);
  }();
  return l;
}

/// x mod L via binary long division (shift-and-subtract on word blocks).
Big big_mod_l(Big x) {
  const Big& l = big_l();
  if (big_cmp(x, l) < 0) return x;
  // Find the highest word offset such that l << offset <= x, then subtract
  // the largest multiples. Classic schoolbook; inputs are <= 64 bytes.
  while (big_cmp(x, l) >= 0) {
    std::size_t shift = x.size() > l.size() ? x.size() - l.size() : 0;
    Big shifted = big_shift_words(l, shift);
    while (shift > 0 && big_cmp(shifted, x) > 0) {
      --shift;
      shifted = big_shift_words(l, shift);
    }
    // Subtract shifted * q where q reduces the leading words; do it simply:
    // subtract the largest power-of-two multiple repeatedly.
    Big multiple = shifted;
    Big doubled = big_add(multiple, multiple);
    while (big_cmp(doubled, x) <= 0) {
      multiple = doubled;
      doubled = big_add(multiple, multiple);
    }
    x = big_sub(x, multiple);
  }
  return x;
}

using Scalar = std::array<std::uint8_t, 32>;

Scalar scalar_mod_l(std::span<const std::uint8_t> bytes) {
  Big x = big_from_bytes_le(bytes);
  x = big_mod_l(std::move(x));
  Scalar out{};
  big_to_bytes32_le(x, out.data());
  return out;
}

/// (a * b + c) mod L.
Scalar scalar_muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
  Big prod = big_mul(big_from_bytes_le(a), big_from_bytes_le(b));
  Big sum = big_add(prod, big_from_bytes_le(c));
  sum = big_mod_l(std::move(sum));
  Scalar out{};
  big_to_bytes32_le(sum, out.data());
  return out;
}

bool scalar_is_canonical(std::span<const std::uint8_t> s) {
  Big x = big_from_bytes_le(s);
  return big_cmp(x, big_l()) < 0;
}

struct ExpandedKey {
  Scalar a;                         // clamped scalar
  std::array<std::uint8_t, 32> prefix;
};

ExpandedKey expand_seed(std::span<const std::uint8_t> seed) {
  const auto h = Sha512::hash(seed);
  ExpandedKey out{};
  std::memcpy(out.a.data(), h.data(), 32);
  std::memcpy(out.prefix.data(), h.data() + 32, 32);
  out.a[0] &= 248;
  out.a[31] &= 63;
  out.a[31] |= 64;
  return out;
}

}  // namespace

Ed25519PublicKey ed25519_public_key(std::span<const std::uint8_t> seed) {
  if (seed.size() != kEd25519SeedSize) {
    throw std::invalid_argument("ed25519: seed must be 32 bytes");
  }
  const ExpandedKey key = expand_seed(seed);
  const GePoint a_point = ge_scalar_mul(key.a, ge_base());
  Ed25519PublicKey out{};
  ge_tobytes(out.data(), a_point);
  return out;
}

Ed25519KeyPair ed25519_keypair(std::span<const std::uint8_t> seed) {
  Ed25519KeyPair kp{};
  std::memcpy(kp.seed.data(), seed.data(), kEd25519SeedSize);
  kp.public_key = ed25519_public_key(seed);
  return kp;
}

Ed25519Signature ed25519_sign(const Ed25519KeyPair& keypair,
                              std::span<const std::uint8_t> message) {
  const ExpandedKey key = expand_seed(keypair.seed);

  // r = SHA512(prefix || M) mod L
  Sha512 h;
  h.update(key.prefix);
  h.update(message);
  const Scalar r = scalar_mod_l(h.finish());

  // R = r * B
  const GePoint r_point = ge_scalar_mul(r, ge_base());
  std::uint8_t r_bytes[32];
  ge_tobytes(r_bytes, r_point);

  // k = SHA512(R || A || M) mod L
  h.reset();
  h.update({r_bytes, 32});
  h.update(keypair.public_key);
  h.update(message);
  const Scalar k = scalar_mod_l(h.finish());

  // S = (r + k * a) mod L
  const Scalar s = scalar_muladd(k, key.a, r);

  Ed25519Signature sig{};
  std::memcpy(sig.data(), r_bytes, 32);
  std::memcpy(sig.data() + 32, s.data(), 32);
  return sig;
}

bool ed25519_verify(std::span<const std::uint8_t> public_key,
                    std::span<const std::uint8_t> message,
                    std::span<const std::uint8_t> signature) {
  if (public_key.size() != kEd25519PublicKeySize ||
      signature.size() != kEd25519SignatureSize) {
    return false;
  }
  const std::span<const std::uint8_t> r_bytes = signature.subspan(0, 32);
  const std::span<const std::uint8_t> s_bytes = signature.subspan(32, 32);
  if (!scalar_is_canonical(s_bytes)) return false;

  GePoint a_point;
  if (!ge_frombytes(a_point, public_key.data())) return false;

  // k = SHA512(R || A || M) mod L
  Sha512 h;
  h.update(r_bytes);
  h.update(public_key);
  h.update(message);
  const Scalar k = scalar_mod_l(h.finish());

  // Check [S]B = R + [k]A  <=>  [S]B + [k](-A) = R.
  Scalar s{};
  std::memcpy(s.data(), s_bytes.data(), 32);
  const GePoint sb = ge_scalar_mul(s, ge_base());
  const GePoint ka = ge_scalar_mul(k, ge_neg(a_point));
  const GePoint check = ge_add(sb, ka);

  std::uint8_t check_bytes[32];
  ge_tobytes(check_bytes, check);
  return std::memcmp(check_bytes, r_bytes.data(), 32) == 0;
}

}  // namespace agrarsec::crypto
