// Poly1305 one-time authenticator (RFC 8439 §2.5). Implemented with 26-bit
// limbs over 64-bit accumulators (the donna-style schoolbook approach).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace agrarsec::crypto {

class Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kTagSize = 16;
  using Tag = std::array<std::uint8_t, kTagSize>;

  explicit Poly1305(std::span<const std::uint8_t> key);

  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] Tag finish();

  static Tag mac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block, bool final_partial, std::size_t len);

  std::uint32_t r_[5];
  std::uint32_t h_[5];
  std::uint32_t pad_[4];
  std::array<std::uint8_t, 16> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace agrarsec::crypto
