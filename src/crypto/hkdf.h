// HKDF-SHA256 (RFC 5869). Used by the secure-channel handshake to derive
// session keys from the X25519 shared secret and the handshake transcript.
#pragma once

#include <cstdint>
#include <span>

#include "core/bytes.h"
#include "crypto/hmac.h"

namespace agrarsec::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
[[nodiscard]] HmacSha256::Tag hkdf_extract(std::span<const std::uint8_t> salt,
                                           std::span<const std::uint8_t> ikm);

/// HKDF-Expand: OKM of `length` bytes (length <= 255*32).
[[nodiscard]] core::Bytes hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length);

/// Extract-then-expand convenience.
[[nodiscard]] core::Bytes hkdf(std::span<const std::uint8_t> salt,
                               std::span<const std::uint8_t> ikm,
                               std::span<const std::uint8_t> info, std::size_t length);

}  // namespace agrarsec::crypto
