#include "crypto/x25519.h"

#include <cstring>
#include <stdexcept>

#include "crypto/field25519.h"

namespace agrarsec::crypto {

using detail::Fe;

X25519Key x25519(std::span<const std::uint8_t> scalar, std::span<const std::uint8_t> u) {
  if (scalar.size() != 32 || u.size() != 32) {
    throw std::invalid_argument("x25519: scalar and u must be 32 bytes");
  }
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  Fe x1;
  detail::fe_frombytes(x1, u.data());

  Fe x2 = detail::fe_one();
  Fe z2 = detail::fe_zero();
  Fe x3 = x1;
  Fe z3 = detail::fe_one();

  std::uint64_t swap = 0;
  for (int pos = 254; pos >= 0; --pos) {
    const std::uint64_t bit = (e[pos / 8] >> (pos & 7)) & 1;
    swap ^= bit;
    detail::fe_cswap(x2, x3, swap);
    detail::fe_cswap(z2, z3, swap);
    swap = bit;

    Fe a, aa, b, bb, eo, c, d, da, cb, t;
    detail::fe_add(a, x2, z2);
    detail::fe_carry(a);
    detail::fe_sq(aa, a);
    detail::fe_sub(b, x2, z2);
    detail::fe_carry(b);
    detail::fe_sq(bb, b);
    detail::fe_sub(eo, aa, bb);
    detail::fe_carry(eo);
    detail::fe_add(c, x3, z3);
    detail::fe_carry(c);
    detail::fe_sub(d, x3, z3);
    detail::fe_carry(d);
    detail::fe_mul(da, d, a);
    detail::fe_mul(cb, c, b);

    detail::fe_add(t, da, cb);
    detail::fe_carry(t);
    detail::fe_sq(x3, t);
    detail::fe_sub(t, da, cb);
    detail::fe_carry(t);
    detail::fe_sq(t, t);
    detail::fe_mul(z3, t, x1);
    detail::fe_mul(x2, aa, bb);
    detail::fe_mul_small(t, eo, 121665);
    detail::fe_add(t, t, aa);
    detail::fe_carry(t);
    detail::fe_mul(z2, eo, t);
  }
  detail::fe_cswap(x2, x3, swap);
  detail::fe_cswap(z2, z3, swap);

  Fe inv_z2, out_fe;
  detail::fe_invert(inv_z2, z2);
  detail::fe_mul(out_fe, x2, inv_z2);

  X25519Key out{};
  detail::fe_tobytes(out.data(), out_fe);
  return out;
}

X25519Key x25519_base(std::span<const std::uint8_t> scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

bool x25519_shared(std::span<const std::uint8_t> private_key,
                   std::span<const std::uint8_t> peer_public, X25519Key& out) {
  out = x25519(private_key, peer_public);
  std::uint8_t acc = 0;
  for (std::uint8_t b : out) acc |= b;
  if (acc == 0) {
    out.fill(0);
    return false;
  }
  return true;
}

}  // namespace agrarsec::crypto
