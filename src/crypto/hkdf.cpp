#include "crypto/hkdf.h"

#include <stdexcept>

namespace agrarsec::crypto {

HmacSha256::Tag hkdf_extract(std::span<const std::uint8_t> salt,
                             std::span<const std::uint8_t> ikm) {
  // Per RFC 5869: empty salt means a string of HashLen zeros.
  if (salt.empty()) {
    static constexpr std::array<std::uint8_t, Sha256::kDigestSize> kZeros{};
    return HmacSha256::mac(kZeros, ikm);
  }
  return HmacSha256::mac(salt, ikm);
}

core::Bytes hkdf_expand(std::span<const std::uint8_t> prk,
                        std::span<const std::uint8_t> info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw std::invalid_argument("hkdf_expand: length too large");
  }
  core::Bytes okm;
  okm.reserve(length);
  HmacSha256::Tag t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 h{prk};
    h.update(std::span(t.data(), t_len));
    h.update(info);
    h.update({&counter, 1});
    t = h.finish();
    t_len = kHashLen;
    const std::size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

core::Bytes hkdf(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm,
                 std::span<const std::uint8_t> info, std::size_t length) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, length);
}

}  // namespace agrarsec::crypto
