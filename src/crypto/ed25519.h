// Ed25519 signatures (RFC 8032). Used for firmware/image signing (secure
// boot), certificate signatures in the PKI, and handshake authentication.
// Verified against the RFC 8032 §7.1 test vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace agrarsec::crypto {

inline constexpr std::size_t kEd25519SeedSize = 32;
inline constexpr std::size_t kEd25519PublicKeySize = 32;
inline constexpr std::size_t kEd25519SignatureSize = 64;

using Ed25519Seed = std::array<std::uint8_t, kEd25519SeedSize>;
using Ed25519PublicKey = std::array<std::uint8_t, kEd25519PublicKeySize>;
using Ed25519Signature = std::array<std::uint8_t, kEd25519SignatureSize>;

/// Key pair. The seed is the RFC 8032 32-byte private key.
struct Ed25519KeyPair {
  Ed25519Seed seed;
  Ed25519PublicKey public_key;
};

/// Derives the public key from a 32-byte seed.
[[nodiscard]] Ed25519PublicKey ed25519_public_key(std::span<const std::uint8_t> seed);

/// Builds a key pair from a seed.
[[nodiscard]] Ed25519KeyPair ed25519_keypair(std::span<const std::uint8_t> seed);

/// Signs `message` (deterministic, per RFC 8032).
[[nodiscard]] Ed25519Signature ed25519_sign(const Ed25519KeyPair& keypair,
                                            std::span<const std::uint8_t> message);

/// Verifies a signature. Rejects non-canonical S (S >= L) and undecodable
/// points.
[[nodiscard]] bool ed25519_verify(std::span<const std::uint8_t> public_key,
                                  std::span<const std::uint8_t> message,
                                  std::span<const std::uint8_t> signature);

}  // namespace agrarsec::crypto
