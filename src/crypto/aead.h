// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). The secure-channel record layer
// and the firmware-update container both use this construction.
#pragma once

#include <cstdint>
#include <span>

#include "core/bytes.h"
#include "core/result.h"

namespace agrarsec::crypto {

inline constexpr std::size_t kAeadKeySize = 32;
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 16;

/// Encrypts `plaintext`; returns ciphertext || 16-byte tag.
[[nodiscard]] core::Bytes aead_seal(std::span<const std::uint8_t> key,
                                    std::span<const std::uint8_t> nonce,
                                    std::span<const std::uint8_t> aad,
                                    std::span<const std::uint8_t> plaintext);

/// Decrypts and authenticates ciphertext || tag. Returns an error Result
/// ("bad_mac") when authentication fails — callers must not inspect any
/// plaintext in that case (none is returned).
[[nodiscard]] core::Result<core::Bytes> aead_open(std::span<const std::uint8_t> key,
                                                  std::span<const std::uint8_t> nonce,
                                                  std::span<const std::uint8_t> aad,
                                                  std::span<const std::uint8_t> sealed);

}  // namespace agrarsec::crypto
