#include "net/radio.h"

#include <algorithm>
#include <cmath>

namespace agrarsec::net {

std::string_view delivery_outcome_name(DeliveryOutcome outcome) {
  switch (outcome) {
    case DeliveryOutcome::kDelivered: return "delivered";
    case DeliveryOutcome::kOutOfRange: return "out-of-range";
    case DeliveryOutcome::kPathLoss: return "path-loss";
    case DeliveryOutcome::kCollision: return "collision";
    case DeliveryOutcome::kJammed: return "jammed";
    case DeliveryOutcome::kDropped: return "dropped";
  }
  return "?";
}

RadioMedium::RadioMedium(core::Rng rng, RadioConfig config, obs::Telemetry* telemetry)
    : rng_(rng), config_(config) {
  if (telemetry != nullptr) {
    telemetry_ = telemetry;
  } else {
    owned_telemetry_ = std::make_unique<obs::Telemetry>();
    telemetry_ = owned_telemetry_.get();
  }
  obs::Registry& reg = telemetry_->registry();
  c_sent_ = &reg.counter("radio.sent");
  // Indexed by DeliveryOutcome; names mirror delivery_outcome_name with
  // '-' swapped for '_' (metric-name convention).
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kDelivered)] =
      &reg.counter("radio.outcome.delivered");
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kOutOfRange)] =
      &reg.counter("radio.outcome.out_of_range");
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kPathLoss)] =
      &reg.counter("radio.outcome.path_loss");
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kCollision)] =
      &reg.counter("radio.outcome.collision");
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kJammed)] =
      &reg.counter("radio.outcome.jammed");
  c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kDropped)] =
      &reg.counter("radio.outcome.dropped");
}

void RadioMedium::attach(NodeId node, PositionFn position, ReceiveFn receive) {
  if (endpoints_.find(node) == endpoints_.end()) {
    sorted_ids_.insert(
        std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), node), node);
  }
  endpoints_[node] = Endpoint{std::move(position), std::move(receive)};
}

void RadioMedium::detach(NodeId node) {
  if (endpoints_.erase(node) > 0) {
    const auto it =
        std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), node);
    if (it != sorted_ids_.end() && *it == node) sorted_ids_.erase(it);
  }
}

void RadioMedium::send(Frame frame, core::SimTime now) {
  c_sent_->add();
  frame.sent_at = now;
  for (const auto& sniffer : sniffers_) sniffer(frame);
  const core::SimDuration latency =
      config_.base_latency +
      static_cast<core::SimDuration>(rng_.next_below(
          static_cast<std::uint64_t>(config_.latency_jitter) + 1));
  queue_.push_back(Pending{std::move(frame), now + latency, send_seq_++});
  std::push_heap(queue_.begin(), queue_.end(), LaterDelivery{});
}

bool RadioMedium::jammed_at(const core::Vec2& pos, std::uint32_t channel) {
  for (const Jammer& j : jammers_) {
    if (!j.active) continue;
    if (j.channel && *j.channel != channel) continue;
    if (core::distance(j.position, pos) <= j.radius_m && rng_.chance(j.effectiveness)) {
      return true;
    }
  }
  return false;
}

bool RadioMedium::dropped(const Frame& frame) {
  for (const DropRule& r : drop_rules_) {
    if (!r.active) continue;
    if ((frame.src == r.victim || frame.dst == r.victim) && rng_.chance(r.probability)) {
      return true;
    }
  }
  return false;
}

namespace {

/// Packs the signed grid cell coordinates of `pos` into one map key.
std::uint64_t grid_key(core::Vec2 pos, double cell, int dx = 0, int dy = 0) {
  const auto cx = static_cast<std::int64_t>(std::floor(pos.x / cell)) + dx;
  const auto cy = static_cast<std::int64_t>(std::floor(pos.y / cell)) + dy;
  return (static_cast<std::uint64_t>(cx) << 32) ^
         (static_cast<std::uint64_t>(cy) & 0xffffffffULL);
}

}  // namespace

void RadioMedium::build_broadcast_snapshot() {
  // Constant-position-within-step assumption: node poses are sampled ONCE
  // here, at the top of RadioMedium::step(), and every broadcast delivered
  // during the step — whatever its deliver_at time within the step window —
  // ranges against these frozen positions. That matches the simulator's
  // kinematics (machines integrate once per 100 ms step, so positions
  // genuinely do not change between step boundaries) and keeps range
  // checks O(1) per candidate off one grid build. If sub-step mobility is
  // ever modelled (continuous integration, faster platforms), delivery
  // must re-sample poses per deliver_at instead of reusing this snapshot.
  bcast_nodes_.clear();
  bcast_grid_.clear();
  const double cell = std::max(config_.max_range_m, 1e-6);
  for (const NodeId id : sorted_ids_) {
    const Endpoint& ep = endpoints_.find(id)->second;
    const core::Vec2 pos = ep.position();
    bcast_grid_[grid_key(pos, cell)].push_back(
        static_cast<std::uint32_t>(bcast_nodes_.size()));
    bcast_nodes_.push_back(BcastNode{id, pos});
  }
}

const std::vector<std::uint32_t>& RadioMedium::broadcast_candidates(
    core::Vec2 src_pos) {
  bcast_candidates_.clear();
  const double cell = std::max(config_.max_range_m, 1e-6);
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      const auto it = bcast_grid_.find(grid_key(src_pos, cell, dx, dy));
      if (it == bcast_grid_.end()) continue;
      bcast_candidates_.insert(bcast_candidates_.end(), it->second.begin(),
                               it->second.end());
    }
  }
  // Cells were visited in arbitrary neighbourhood order; restore the
  // ascending-id order the fan-out (and its RNG stream) is defined in.
  std::sort(bcast_candidates_.begin(), bcast_candidates_.end());
  return bcast_candidates_;
}

DeliveryOutcome RadioMedium::judge(const Frame& frame, const core::Vec2& src_pos,
                                   const core::Vec2& dst_pos, bool collided) {
  const double d = core::distance(src_pos, dst_pos);
  if (d > config_.max_range_m) return DeliveryOutcome::kOutOfRange;
  if (dropped(frame)) return DeliveryOutcome::kDropped;
  if (jammed_at(dst_pos, frame.channel) || jammed_at(src_pos, frame.channel)) {
    return DeliveryOutcome::kJammed;
  }
  if (collided && rng_.chance(config_.collision_probability)) {
    return DeliveryOutcome::kCollision;
  }

  // Log-distance style loss: base below reference range, growing with
  // (d/ref)^exponent above it, saturating at 1.
  double loss = config_.base_loss;
  if (d > config_.reference_range_m) {
    const double ratio = d / config_.reference_range_m;
    loss = std::min(1.0, config_.base_loss * std::pow(ratio, config_.loss_exponent));
  }
  if (rng_.chance(loss)) return DeliveryOutcome::kPathLoss;
  return DeliveryOutcome::kDelivered;
}

void RadioMedium::step(core::SimTime now) {
  // Collect due frames in (deliver_at, send-order) order. The heap means
  // an in-flight frame with a large jitter draw cannot block already-due
  // frames queued behind it (head-of-line blocking of the old FIFO).
  std::vector<Pending> due;
  while (!queue_.empty() && queue_.front().deliver_at <= now) {
    std::pop_heap(queue_.begin(), queue_.end(), LaterDelivery{});
    due.push_back(std::move(queue_.back()));
    queue_.pop_back();
  }
  if (due.empty()) return;

  // Collision detection: two due frames on the same channel whose send
  // times fall within the collision window interfere (simplified CSMA
  // failure model; the window is small relative to the sim step).
  // Bucketing by channel and sweeping a window over send times replaces
  // the old all-pairs scan across the whole batch; the marked set is
  // identical (the pair predicate is symmetric and per-channel).
  std::vector<bool> collided(due.size(), false);
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_channel;
  for (std::size_t i = 0; i < due.size(); ++i) {
    by_channel[due[i].frame.channel].push_back(i);
  }
  for (auto& [channel, idxs] : by_channel) {
    if (idxs.size() < 2) continue;
    std::sort(idxs.begin(), idxs.end(), [&](std::size_t a, std::size_t b) {
      return due[a].frame.sent_at < due[b].frame.sent_at;
    });
    for (std::size_t u = 0; u < idxs.size(); ++u) {
      for (std::size_t v = u + 1; v < idxs.size(); ++v) {
        const double gap = static_cast<double>(due[idxs[v]].frame.sent_at -
                                               due[idxs[u]].frame.sent_at);
        if (gap > config_.collision_window_ms) break;  // sorted: no later hit
        if (due[idxs[u]].frame.src == due[idxs[v]].frame.src) continue;
        collided[idxs[u]] = collided[idxs[v]] = true;
      }
    }
  }

  // Broadcast fan-out uses a per-step snapshot + uniform grid (cell size
  // max_range_m): only nodes in the 3x3 neighbourhood of the sender can be
  // in range, the rest are counted out-of-range in bulk. Positions do not
  // change within a sim step, so one snapshot serves every due broadcast.
  const bool any_broadcast =
      std::any_of(due.begin(), due.end(),
                  [](const Pending& p) { return !p.frame.dst.valid(); });
  if (any_broadcast) build_broadcast_snapshot();

  for (std::size_t i = 0; i < due.size(); ++i) {
    const Frame& frame = due[i].frame;
    const auto src_it = endpoints_.find(frame.src);
    if (src_it == endpoints_.end()) continue;  // sender vanished mid-flight
    const core::Vec2 src_pos = src_it->second.position();

    auto deliver_to = [&](NodeId dst, core::Vec2 dst_pos) {
      // Re-found at delivery time: an earlier receive callback this step
      // may have detached the destination (or attached a node, rehashing
      // endpoints_), so the broadcast snapshot carries ids, not pointers.
      const auto dst_it = endpoints_.find(dst);
      if (dst_it == endpoints_.end()) return;  // receiver vanished mid-step
      const DeliveryOutcome outcome = judge(frame, src_pos, dst_pos, collided[i]);
      c_outcomes_[static_cast<std::size_t>(outcome)]->add();
      if (outcome != DeliveryOutcome::kDelivered &&
          outcome != DeliveryOutcome::kOutOfRange) {
        // Adversarial/channel losses go to the flight recorder (step() is
        // serial, so the order is deterministic); out-of-range is ambient
        // geometry, not an incident.
        telemetry_->recorder().record(now, "radio", delivery_outcome_name(outcome),
                                      dst.value(), frame.src.value(), frame.channel);
      }
      if (outcome == DeliveryOutcome::kDelivered) {
        Frame received = frame;
        received.dst = dst;
        // Copy the handler: receive() may detach its own node re-entrantly,
        // which would destroy the stored std::function mid-call.
        const ReceiveFn receive = dst_it->second.receive;
        receive(received, now);
      }
    };

    if (frame.dst.valid()) {
      const auto dst_it = endpoints_.find(frame.dst);
      if (dst_it == endpoints_.end()) continue;
      deliver_to(frame.dst, dst_it->second.position());
    } else {
      const std::vector<std::uint32_t>& candidates = broadcast_candidates(src_pos);
      std::size_t reached = 0;  // candidates judged (sender excluded)
      bool src_in_snapshot = false;
      for (const std::uint32_t idx : candidates) {
        const BcastNode& node = bcast_nodes_[idx];
        if (node.id == frame.src) {
          src_in_snapshot = true;
          continue;
        }
        ++reached;
        deliver_to(node.id, node.pos);
      }
      // Everyone outside the neighbourhood is provably beyond max_range_m;
      // judge() rejects out-of-range before drawing any randomness, so
      // counting them here (instead of judging each) is bit-identical.
      c_outcomes_[static_cast<std::size_t>(DeliveryOutcome::kOutOfRange)]->add(
          (bcast_nodes_.size() - (src_in_snapshot ? 1 : 0)) - reached);
    }
  }
}

std::size_t RadioMedium::add_jammer(Jammer jammer) {
  jammers_.push_back(jammer);
  return jammers_.size() - 1;
}

void RadioMedium::set_jammer_active(std::size_t index, bool active) {
  jammers_.at(index).active = active;
}

std::size_t RadioMedium::add_drop_rule(DropRule rule) {
  drop_rules_.push_back(rule);
  return drop_rules_.size() - 1;
}

void RadioMedium::set_drop_rule_active(std::size_t index, bool active) {
  drop_rules_.at(index).active = active;
}

std::uint64_t RadioMedium::count(DeliveryOutcome outcome) const {
  return c_outcomes_[static_cast<std::size_t>(outcome)]->value();
}

void RadioMedium::add_sniffer(std::function<void(const Frame&)> sniffer) {
  sniffers_.push_back(std::move(sniffer));
}

}  // namespace agrarsec::net
