#include "net/stream.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace agrarsec::net {

namespace {

/// Polls one fd for `events`; true when ready, false on timeout/error.
bool wait_ready(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

}  // namespace

// --- TcpStream -------------------------------------------------------------

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect_local(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return TcpStream{};
  set_cloexec(fd);
  set_nonblocking(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return TcpStream{};
  }
  if (rc != 0) {
    if (!wait_ready(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      return TcpStream{};
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return TcpStream{};
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

long TcpStream::read_some(std::uint8_t* out, std::size_t max, int timeout_ms) {
  if (fd_ < 0 || max == 0) return -1;
  for (;;) {
    const ssize_t n = ::recv(fd_, out, max, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd_, POLLIN, timeout_ms)) return -1;
      continue;
    }
    return -1;
  }
}

long TcpStream::read_nowait(std::uint8_t* out, std::size_t max) {
  if (fd_ < 0 || max == 0) return -2;
  for (;;) {
    const ssize_t n = ::recv(fd_, out, max, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

long TcpStream::write_nowait(std::string_view text) {
  if (fd_ < 0) return -1;
  if (text.empty()) return 0;
  for (;;) {
    const ssize_t n = ::send(fd_, text.data(), text.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

bool TcpStream::write_all(std::span<const std::uint8_t> data, int timeout_ms) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd_, POLLOUT, timeout_ms)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool TcpStream::write_all(std::string_view text, int timeout_ms) {
  return write_all(
      std::span(reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
      timeout_ms);
}

bool TcpStream::read_exact(std::uint8_t* out, std::size_t n, int timeout_ms) {
  std::size_t off = 0;
  while (off < n) {
    const long got = read_some(out + off, n - off, timeout_ms);
    if (got <= 0) return false;
    off += static_cast<std::size_t>(got);
  }
  return true;
}

// --- TcpListener -----------------------------------------------------------

TcpListener::~TcpListener() { close(); }

core::Status TcpListener::bind_and_listen(std::uint16_t port, int backlog) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return core::make_error("socket", std::strerror(errno));
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return core::make_error("bind", err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return core::make_error("listen", err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return core::make_error("getsockname", err);
  }
  set_nonblocking(fd);
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return core::Status::ok_status();
}

TcpStream TcpListener::accept_conn(int timeout_ms) {
  if (fd_ < 0) return TcpStream{};
  if (!wait_ready(fd_, POLLIN, timeout_ms)) return TcpStream{};
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) return TcpStream{};
  set_cloexec(conn);
  set_nonblocking(conn);
  const int one = 1;
  ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{conn};
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

// --- framing ---------------------------------------------------------------

bool write_frame(TcpStream& stream, std::span<const std::uint8_t> payload,
                 int timeout_ms) {
  core::Bytes out;
  out.reserve(4 + payload.size());
  core::append_be32(out, static_cast<std::uint32_t>(payload.size()));
  core::append(out, payload);
  return stream.write_all(out, timeout_ms);
}

std::optional<core::Bytes> read_frame(TcpStream& stream, int timeout_ms,
                                      std::size_t max_len) {
  std::uint8_t prefix[4];
  if (!stream.read_exact(prefix, 4, timeout_ms)) return std::nullopt;
  const std::uint32_t len = core::load_be32(prefix);
  if (len > max_len) return std::nullopt;
  core::Bytes payload(len);
  if (len > 0 && !stream.read_exact(payload.data(), len, timeout_ms)) {
    return std::nullopt;
  }
  return payload;
}

}  // namespace agrarsec::net
