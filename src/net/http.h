// Embedded HTTP/1.1 server for the operations console. From scratch on
// top of net::TcpListener (repo policy: std-library/POSIX only), sized
// for an on-machine console, not the open internet:
//  - one dedicated accept thread; connections are served to completion on
//    that thread (the hard bound on concurrent connections is therefore
//    1, and a stalled client is cut off by the I/O timeout, so a slow
//    reader can delay — never wedge — the console);
//  - a strict incremental request parser with explicit limits on request
//    line, header count/size and body size; anything out of spec is
//    answered with a 4xx and the connection closed;
//  - keep-alive with pipelining: the parser consumes exactly one request
//    from the buffer, so back-to-back requests on one connection are
//    answered in order.
// The server is transport-only — routing lives in the handler callback
// (service::ConsoleService). Handlers run on the server thread; anything
// they touch must be thread-safe against the simulation threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/result.h"
#include "net/stream.h"

namespace agrarsec::net {

struct HttpRequest {
  std::string method;   ///< GET / POST / HEAD (parser rejects others)
  std::string target;   ///< origin-form target, e.g. "/metrics?n=32"
  std::string version;  ///< "HTTP/1.1" (parser rejects others)
  std::vector<std::pair<std::string, std::string>> headers;  ///< order kept
  std::string body;

  /// Case-insensitive header lookup (first match); empty when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const;
  /// Target path without the query string.
  [[nodiscard]] std::string_view path() const;
  /// Value of query parameter `key` ("" when absent; no %-decoding).
  [[nodiscard]] std::string_view query_param(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close_connection = false;

  [[nodiscard]] std::string serialize() const;
  static HttpResponse json(std::string body);
  static HttpResponse text(int status, std::string body);
  static HttpResponse error(int status, std::string_view code,
                            std::string_view message);
};

/// Hard limits the parser enforces. Defaults fit console traffic with an
/// order of magnitude of slack.
struct HttpLimits {
  std::size_t max_request_line = 4096;
  std::size_t max_header_count = 64;
  std::size_t max_header_bytes = 16384;  ///< total, incl. terminators
  std::size_t max_body_bytes = 65536;
};

/// Incremental strict parser. Feed bytes with append(); poll() consumes
/// at most one complete request from the front of the buffer, leaving any
/// pipelined follow-up in place.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  enum class Status : std::uint8_t {
    kNeedMore = 0,  ///< buffer holds no complete request yet
    kComplete = 1,  ///< `request` filled, its bytes consumed
    kError = 2,     ///< protocol violation; error_status() says which
  };

  void append(std::string_view bytes) { buffer_.append(bytes); }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  Status poll(HttpRequest& request);
  /// HTTP status code to answer with after kError (e.g. 400, 431, 501).
  [[nodiscard]] int error_status() const { return error_status_; }

 private:
  Status fail(int status) {
    error_status_ = status;
    return Status::kError;
  }

  HttpLimits limits_;
  std::string buffer_;
  int error_status_ = 0;
};

struct HttpServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  int io_timeout_ms = 2000;
  int max_requests_per_connection = 128;
  HttpLimits limits;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerConfig config = {}) : config_(config) {}
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and launches the accept thread. Fails if already running or
  /// the port is taken.
  core::Status start(Handler handler);
  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return thread_.joinable(); }
  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Connections accepted / requests served / protocol errors answered —
  /// wall-side observability for the console's own traffic.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t protocol_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void serve_connection(TcpStream stream);

  HttpServerConfig config_;
  Handler handler_;
  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace agrarsec::net
