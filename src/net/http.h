// Embedded HTTP/1.1 server for the operations console. From scratch on
// top of net::TcpListener (repo policy: std-library/POSIX only), sized
// for an on-machine console, not the open internet:
//  - one dedicated server thread drives a poll(2) loop over the listener
//    plus a bounded set of live connections, so N observers are served
//    concurrently and a slow reader can never head-of-line-block the
//    console (connections beyond max_connections are answered with a
//    deterministic 503 and closed);
//  - a strict incremental request parser per connection with explicit
//    limits on request line, header count/size and body size; anything
//    out of spec is answered with a 4xx and the connection closed;
//  - keep-alive with pipelining: the parser consumes exactly one request
//    from the buffer, so back-to-back requests on one connection are
//    answered in order;
//  - long-lived streaming responses (Server-Sent Events): a handler may
//    attach a pull-model pump to the response; the server calls it on
//    every poll tick and forwards whatever it produces, bounded by a
//    per-connection output-buffer cap (a stalled subscriber is cut, not
//    buffered without limit);
//  - idle/slow-loris cutoff: a connection that leaves a request unfinished
//    past io_timeout_ms is answered 408 and closed (deadlines run on the
//    wall clock — this layer is wall-side observability, never part of a
//    deterministic export).
// The server is transport-only — routing lives in the handler callback
// (service::ConsoleService). Handlers and stream pumps run on the server
// thread; anything they touch must be thread-safe against the simulation
// threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/result.h"
#include "net/stream.h"

namespace agrarsec::net {

struct HttpRequest {
  std::string method;   ///< GET / POST / HEAD (parser rejects others)
  std::string target;   ///< origin-form target, e.g. "/metrics?n=32"
  std::string version;  ///< "HTTP/1.1" (parser rejects others)
  std::vector<std::pair<std::string, std::string>> headers;  ///< order kept
  std::string body;

  /// Case-insensitive header lookup (first match); empty when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const;
  /// Target path without the query string.
  [[nodiscard]] std::string_view path() const;
  /// Value of query parameter `key` ("" when absent; no %-decoding).
  [[nodiscard]] std::string_view query_param(std::string_view key) const;
};

struct HttpResponse {
  /// Pull-model streaming pump. Called on every server poll tick with the
  /// connection's output string; append whatever is due (possibly
  /// nothing). Return false to end the stream — pending output is flushed
  /// and the connection closed. Runs on the server thread.
  using StreamPump = std::function<bool(std::string& out)>;

  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool close_connection = false;
  /// When set, the response is streamed: the head goes out with
  /// `content_type` and no Content-Length, `body` is ignored, and the
  /// pump produces the payload incrementally until it returns false.
  StreamPump stream;

  [[nodiscard]] std::string serialize() const;
  /// Status line + headers for a streaming response (no Content-Length,
  /// Connection: close — SSE streams end by disconnect).
  [[nodiscard]] std::string serialize_stream_head() const;
  static HttpResponse json(std::string body);
  static HttpResponse text(int status, std::string body);
  static HttpResponse error(int status, std::string_view code,
                            std::string_view message);
  /// text/event-stream response driven by `pump`.
  static HttpResponse event_stream(StreamPump pump);
};

/// Hard limits the parser enforces. Defaults fit console traffic with an
/// order of magnitude of slack.
struct HttpLimits {
  std::size_t max_request_line = 4096;
  std::size_t max_header_count = 64;
  std::size_t max_header_bytes = 16384;  ///< total, incl. terminators
  std::size_t max_body_bytes = 65536;
};

/// Incremental strict parser. Feed bytes with append(); poll() consumes
/// at most one complete request from the front of the buffer, leaving any
/// pipelined follow-up in place.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  enum class Status : std::uint8_t {
    kNeedMore = 0,  ///< buffer holds no complete request yet
    kComplete = 1,  ///< `request` filled, its bytes consumed
    kError = 2,     ///< protocol violation; error_status() says which
  };

  void append(std::string_view bytes) { buffer_.append(bytes); }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  Status poll(HttpRequest& request);
  /// HTTP status code to answer with after kError (e.g. 400, 431, 501).
  [[nodiscard]] int error_status() const { return error_status_; }

 private:
  Status fail(int status) {
    error_status_ = status;
    return Status::kError;
  }

  HttpLimits limits_;
  std::string buffer_;
  int error_status_ = 0;
};

struct HttpServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Idle cutoff per connection: a connection with a partial request
  /// pending past this deadline is answered 408; an idle keep-alive
  /// connection is silently closed. Streaming connections are exempt
  /// (the server is the writer); they are bounded by max_outbuf_bytes.
  int io_timeout_ms = 2000;
  int max_requests_per_connection = 128;
  /// Hard bound on concurrently served connections. Accepts beyond the
  /// bound are answered with a deterministic 503 and closed.
  std::size_t max_connections = 32;
  /// Poll tick: stream pumps fire and the stop flag is observed at this
  /// cadence (also the upper bound on event-delivery latency for SSE).
  int poll_interval_ms = 20;
  /// Per-connection pending-output cap. A subscriber that reads slower
  /// than its stream produces is disconnected once this much output is
  /// queued — bounded subscriber lag, enforced at the transport.
  std::size_t max_outbuf_bytes = 1 << 20;
  HttpLimits limits;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerConfig config = {}) : config_(config) {}
  ~HttpServer() { stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and launches the server thread. Fails if already running or
  /// the port is taken.
  core::Status start(Handler handler);
  /// Stops the poll loop, drops all connections and joins the thread.
  /// Idempotent.
  void stop();
  [[nodiscard]] bool running() const { return thread_.joinable(); }
  /// Bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Connections accepted / requests served / protocol errors answered /
  /// over-limit rejections / streams opened / streams cut for lag — wall-
  /// side observability for the console's own traffic.
  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t protocol_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t streams_opened() const {
    return streams_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t streams_overrun() const {
    return overruns_.load(std::memory_order_relaxed);
  }

 private:
  /// One live connection in the poll set.
  struct Connection {
    TcpStream stream;
    HttpRequestParser parser;
    int served = 0;
    std::string outbuf;           ///< serialized, not yet written
    std::size_t out_off = 0;      ///< bytes of outbuf already written
    HttpResponse::StreamPump pump;  ///< engaged once a stream starts
    bool close_after_flush = false;
    std::uint64_t idle_since_ns = 0;  ///< wall clock; see io_timeout_ms

    explicit Connection(TcpStream s, HttpLimits limits, std::uint64_t now)
        : stream(std::move(s)), parser(limits), idle_since_ns(now) {}
    [[nodiscard]] bool has_pending_out() const {
      return out_off < outbuf.size();
    }
  };

  void serve_loop();
  void accept_pending(std::vector<std::unique_ptr<Connection>>& conns,
                      std::uint64_t now);
  /// Drains readable bytes + parses/answers requests. False => drop.
  bool service_input(Connection& conn, std::uint64_t now);
  /// Runs the stream pump / idle deadline / flush. False => drop.
  bool service_output(Connection& conn, std::uint64_t now);
  void answer(Connection& conn, const HttpRequest& request);

  HttpServerConfig config_;
  Handler handler_;
  TcpListener listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> streams_{0};
  std::atomic<std::uint64_t> overruns_{0};
};

}  // namespace agrarsec::net
