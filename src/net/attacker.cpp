#include "net/attacker.h"

namespace agrarsec::net {

AttackerProfile attacker_profile_for_level(int level) {
  AttackerProfile p;
  p.can_sniff = level >= 1;
  p.can_spoof = level >= 2;
  p.can_replay = level >= 2;
  p.can_flood = level >= 2;
  p.can_drop = level >= 3;
  p.can_jam = level >= 3;
  p.can_forge_crypto = false;  // out of scope for all modelled levels
  return p;
}

AttackerNode::AttackerNode(NodeId id, core::Vec2 position, core::Rng rng,
                           AttackerProfile profile)
    : id_(id), position_(position), rng_(rng), profile_(profile) {}

void AttackerNode::attach(RadioMedium& medium) {
  medium.attach(
      id_, [this] { return position_; },
      [](const Frame&, core::SimTime) { /* unicast to the attacker: ignored */ });
  if (profile_.can_sniff) {
    medium.add_sniffer([this](const Frame& frame) {
      if (frame.src == id_) return;  // don't capture own injections
      captured_.push_back(frame);
      if (captured_.size() > kCaptureLimit) captured_.pop_front();
    });
  }
}

bool AttackerNode::spoof(RadioMedium& medium, core::SimTime now,
                         std::uint64_t spoofed_sender, MessageType type,
                         core::Bytes body, NodeId dst) {
  if (!profile_.can_spoof) return false;
  Message m;
  m.type = type;
  m.sender = spoofed_sender;
  m.sequence = spoof_sequence_++;
  m.timestamp = now;
  m.body = std::move(body);

  Frame frame;
  frame.src = id_;
  frame.dst = dst;
  frame.payload = m.encode();
  medium.send(std::move(frame), now);
  ++injected_;
  return true;
}

bool AttackerNode::replay_latest(RadioMedium& medium, core::SimTime now,
                                 const std::function<bool(const Frame&)>& filter,
                                 bool refresh_timestamp) {
  if (!profile_.can_replay) return false;
  for (auto it = captured_.rbegin(); it != captured_.rend(); ++it) {
    if (filter && !filter(*it)) continue;
    Frame replayed = *it;
    replayed.src = id_;  // physically transmitted by the attacker radio
    if (refresh_timestamp) {
      // Tampering is only possible when the payload is plaintext. For
      // secure records only the (unauthenticated) outer envelope can be
      // touched, and receivers trust the inner authenticated timestamp.
      if (auto message = Message::decode(replayed.payload);
          message && message->type != MessageType::kSecureRecord) {
        message->timestamp = now;
        replayed.payload = message->encode();
      }
    }
    medium.send(std::move(replayed), now);
    ++injected_;
    return true;
  }
  return false;
}

bool AttackerNode::flood(RadioMedium& medium, core::SimTime now, std::uint32_t channel,
                         std::size_t count) {
  if (!profile_.can_flood) return false;
  for (std::size_t i = 0; i < count; ++i) {
    Frame frame;
    frame.src = id_;
    frame.dst = NodeId::invalid();
    frame.channel = channel;
    frame.payload = rng_.bytes(32);
    medium.send(std::move(frame), now);
    ++injected_;
  }
  return true;
}

}  // namespace agrarsec::net
