#include "net/message.h"

#include <cstring>

namespace agrarsec::net {

namespace {
void append_double(core::Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  core::append_le64(out, bits);
}

double read_double(const std::uint8_t* p) {
  const std::uint64_t bits = core::load_le64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}
}  // namespace

std::string_view message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kHeartbeat: return "heartbeat";
    case MessageType::kTelemetry: return "telemetry";
    case MessageType::kDetectionReport: return "detection-report";
    case MessageType::kEstopCommand: return "estop-command";
    case MessageType::kEstopAck: return "estop-ack";
    case MessageType::kMissionCommand: return "mission-command";
    case MessageType::kHandshake: return "handshake";
    case MessageType::kSecureRecord: return "secure-record";
    case MessageType::kFirmwareChunk: return "firmware-chunk";
    case MessageType::kGnssCorrection: return "gnss-correction";
    case MessageType::kCrlUpdate: return "crl-update";
  }
  return "?";
}

core::Bytes Message::encode() const {
  core::Bytes out;
  out.push_back(static_cast<std::uint8_t>(type));
  core::append_le64(out, sender);
  core::append_le64(out, sequence);
  core::append_le64(out, static_cast<std::uint64_t>(timestamp));
  core::append_framed(out, body);
  return out;
}

std::optional<Message> Message::decode(std::span<const std::uint8_t> data) {
  constexpr std::size_t kHeader = 1 + 8 + 8 + 8 + 4;
  if (data.size() < kHeader) return std::nullopt;
  Message m;
  if (data[0] > static_cast<std::uint8_t>(MessageType::kCrlUpdate)) return std::nullopt;
  m.type = static_cast<MessageType>(data[0]);
  m.sender = core::load_le64(data.data() + 1);
  m.sequence = core::load_le64(data.data() + 9);
  m.timestamp = static_cast<core::SimTime>(core::load_le64(data.data() + 17));
  const std::uint32_t body_len = core::load_be32(data.data() + 25);
  if (data.size() != kHeader + body_len) return std::nullopt;
  m.body.assign(data.begin() + kHeader, data.end());
  return m;
}

core::Bytes DetectionBody::encode() const {
  core::Bytes out;
  append_double(out, x);
  append_double(out, y);
  append_double(out, confidence);
  core::append_be32(out, track_id);
  return out;
}

std::optional<DetectionBody> DetectionBody::decode(std::span<const std::uint8_t> data) {
  if (data.size() != 28) return std::nullopt;
  DetectionBody b;
  b.x = read_double(data.data());
  b.y = read_double(data.data() + 8);
  b.confidence = read_double(data.data() + 16);
  b.track_id = core::load_be32(data.data() + 24);
  return b;
}

core::Bytes TelemetryBody::encode() const {
  core::Bytes out;
  append_double(out, x);
  append_double(out, y);
  append_double(out, heading);
  append_double(out, speed);
  return out;
}

std::optional<TelemetryBody> TelemetryBody::decode(std::span<const std::uint8_t> data) {
  if (data.size() != 32) return std::nullopt;
  TelemetryBody b;
  b.x = read_double(data.data());
  b.y = read_double(data.data() + 8);
  b.heading = read_double(data.data() + 16);
  b.speed = read_double(data.data() + 24);
  return b;
}

core::Bytes EstopBody::encode() const {
  core::Bytes out;
  core::append_be32(out, reason);
  core::append_le64(out, target);
  return out;
}

std::optional<EstopBody> EstopBody::decode(std::span<const std::uint8_t> data) {
  if (data.size() != 12) return std::nullopt;
  EstopBody b;
  b.reason = core::load_be32(data.data());
  b.target = core::load_le64(data.data() + 4);
  return b;
}

}  // namespace agrarsec::net
