// Simulated wireless medium for the forestry worksite. Models the channel
// properties the paper's §IV-C identifies as the dominant cybersecurity
// surface for autonomous haulage/forestry machines: distance-dependent
// loss, interference between co-channel transmitters, jamming, and
// de-authentication/drop attacks. There is no roadside infrastructure —
// all traffic is machine-to-machine within the site (Table I: remote and
// isolated locations).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bytes.h"
#include "core/geometry.h"
#include "core/rng.h"
#include "core/time.h"
#include "core/types.h"
#include "obs/telemetry.h"

namespace agrarsec::net {

/// A frame on the air. Payload is opaque to the medium (the secure channel
/// encrypts above this layer).
struct Frame {
  NodeId src;
  NodeId dst;            ///< NodeId::invalid() == broadcast
  std::uint32_t channel = 0;
  core::Bytes payload;
  core::SimTime sent_at = 0;
};

/// Delivery outcome, recorded per frame for the experiment harnesses.
enum class DeliveryOutcome : std::uint8_t {
  kDelivered,
  kOutOfRange,
  kPathLoss,      ///< random loss from the distance/terrain model
  kCollision,     ///< co-channel interference
  kJammed,        ///< active jammer overpowered the link
  kDropped,       ///< targeted drop (de-auth style attack)
};

[[nodiscard]] std::string_view delivery_outcome_name(DeliveryOutcome outcome);

/// Physical-layer parameters.
struct RadioConfig {
  double max_range_m = 600.0;        ///< hard connectivity limit
  double reference_range_m = 150.0;  ///< loss starts growing past this
  double base_loss = 0.01;           ///< frame loss probability at close range
  double loss_exponent = 2.2;        ///< terrain-dependent path loss growth
  double collision_window_ms = 5.0;  ///< frames within this window may collide
  /// Probability that two overlapping same-channel frames actually destroy
  /// each other (CSMA/CA resolves most overlaps in practice).
  double collision_probability = 0.25;
  core::SimDuration base_latency = 2;     ///< ms, propagation + MAC
  core::SimDuration latency_jitter = 3;   ///< ms, uniform extra
};

/// An active jammer: position, power radius and the channels it covers.
struct Jammer {
  core::Vec2 position;
  double radius_m = 200.0;
  std::optional<std::uint32_t> channel;  ///< nullopt = wideband
  double effectiveness = 0.95;           ///< P(frame killed inside radius)
  bool active = false;
};

/// A targeted drop rule (models Wi-Fi de-auth flooding against one victim:
/// frames to/from the victim are destroyed with given probability).
struct DropRule {
  NodeId victim;
  double probability = 1.0;
  bool active = true;
};

/// The shared medium. Nodes register with a position provider so mobility
/// is reflected per transmission.
class RadioMedium {
 public:
  using PositionFn = std::function<core::Vec2()>;
  using ReceiveFn = std::function<void(const Frame&, core::SimTime now)>;

  /// With no `telemetry` the medium owns a private obs::Telemetry; inject
  /// a shared one to merge radio counters/flight events into a stack-wide
  /// export. Either way the outcome counters are registry instruments
  /// ("radio.sent", "radio.outcome.*") and count()/total_sent() are thin
  /// adapters over them.
  RadioMedium(core::Rng rng, RadioConfig config = {},
              obs::Telemetry* telemetry = nullptr);

  /// Registers a node. `position` is sampled at send/deliver time.
  void attach(NodeId node, PositionFn position, ReceiveFn receive);
  void detach(NodeId node);

  /// Queues a frame for transmission at `now`; delivery happens on the
  /// next step() whose time exceeds the frame latency.
  void send(Frame frame, core::SimTime now);

  /// Delivers all due frames; applies loss, collision, jamming, drops.
  void step(core::SimTime now);

  // --- Attack surface controls (driven by attacker models / benches) ---
  std::size_t add_jammer(Jammer jammer);
  void set_jammer_active(std::size_t index, bool active);
  std::size_t add_drop_rule(DropRule rule);
  void set_drop_rule_active(std::size_t index, bool active);

  /// Counters per outcome since construction (registry-backed views).
  [[nodiscard]] std::uint64_t count(DeliveryOutcome outcome) const;
  [[nodiscard]] std::uint64_t total_sent() const { return c_sent_->value(); }

  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return *telemetry_; }

  /// Adds a tap seeing every frame *before* channel effects (promiscuous
  /// attacker / IDS sensor view). Multiple taps may coexist.
  void add_sniffer(std::function<void(const Frame&)> sniffer);

  [[nodiscard]] const RadioConfig& config() const { return config_; }

 private:
  struct Endpoint {
    PositionFn position;
    ReceiveFn receive;
  };
  struct Pending {
    Frame frame;
    core::SimTime deliver_at;
    std::uint64_t seq = 0;  ///< send order; tie-break for equal deliver_at
  };
  /// Heap predicate: the frame delivering *later* sorts first under
  /// std::push_heap's max-heap convention, making queue_ a min-heap on
  /// (deliver_at, seq). The seq tie-break keeps equal-latency traffic in
  /// send order, so jitter-free configs behave exactly like the old FIFO.
  struct LaterDelivery {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  /// Per-destination outcome decision.
  DeliveryOutcome judge(const Frame& frame, const core::Vec2& src_pos,
                        const core::Vec2& dst_pos, bool collided);

  [[nodiscard]] bool jammed_at(const core::Vec2& pos, std::uint32_t channel);
  [[nodiscard]] bool dropped(const Frame& frame);

  /// Node snapshot for one step's broadcast fan-outs: id and position
  /// sampled once at step time. Deliberately no Endpoint pointer: receive
  /// callbacks may attach/detach re-entrantly, so the endpoint is re-found
  /// by id at delivery time (and skipped if it vanished mid-step).
  struct BcastNode {
    NodeId id;
    core::Vec2 pos;
  };
  /// Rebuilds bcast_nodes_ / bcast_grid_ for the current step.
  void build_broadcast_snapshot();
  /// Indices into bcast_nodes_ within the 3x3 grid neighbourhood of
  /// `src_pos` (cell size = max_range_m, so anything outside the
  /// neighbourhood is provably out of range), ascending id order.
  const std::vector<std::uint32_t>& broadcast_candidates(core::Vec2 src_pos);

  core::Rng rng_;
  RadioConfig config_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  /// Attached node ids in ascending order: drives broadcast fan-out so
  /// delivery (and therefore RNG consumption) order is deterministic
  /// instead of following unordered_map iteration order.
  std::vector<NodeId> sorted_ids_;
  // Per-step broadcast scratch, reused across frames to stay allocation-free
  // in the hot loop. The grid prunes fan-out from O(all nodes) to the
  // neighbourhood actually within radio range; judge() rejects out-of-range
  // destinations before consuming any randomness, so pruning them (counted
  // in bulk as kOutOfRange) leaves every surviving outcome bit-identical.
  std::vector<BcastNode> bcast_nodes_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> bcast_grid_;
  std::vector<std::uint32_t> bcast_candidates_;
  /// Min-heap on (deliver_at, seq) via LaterDelivery. A plain FIFO deque
  /// here once caused head-of-line blocking: latency jitter makes
  /// deliver_at non-monotone in send order, and a front frame with a high
  /// jitter draw stalled every already-due frame behind it.
  std::vector<Pending> queue_;
  std::uint64_t send_seq_ = 0;
  std::vector<Jammer> jammers_;
  std::vector<DropRule> drop_rules_;
  std::vector<std::function<void(const Frame&)>> sniffers_;

  // Telemetry: injected or owned (see constructor); outcome counters are
  // registry instruments, resolved once. step() runs serially, so flight
  // events for adversarial outcomes (collision/jam/drop/path-loss) are
  // recorded in a deterministic order.
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  std::array<obs::Counter*, 6> c_outcomes_{};
  obs::Counter* c_sent_ = nullptr;
};

}  // namespace agrarsec::net
