// Minimal TCP transport for the embedded operations console: a loopback
// listener with poll-based accept (so server threads can observe a stop
// flag instead of blocking forever in accept(2)), a stream wrapper with
// bounded-timeout reads/writes, and be32 length-prefixed frame I/O for
// the secure control channel. POSIX sockets only — the repo policy is no
// third-party networking, and the console binds 127.0.0.1 by default (a
// forestry machine exposes its console on the machine, not the forest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/bytes.h"
#include "core/result.h"

namespace agrarsec::net {

/// Owning wrapper around a connected socket. Move-only; closes on
/// destruction. All operations take a timeout so a stalled peer can never
/// wedge a server thread.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Connects to 127.0.0.1:port. Returns an invalid stream on failure.
  static TcpStream connect_local(std::uint16_t port, int timeout_ms = 2000);

  /// Reads up to `max` bytes; returns bytes read, 0 on orderly shutdown,
  /// -1 on error/timeout.
  [[nodiscard]] long read_some(std::uint8_t* out, std::size_t max, int timeout_ms);

  /// Single non-blocking read attempt for poll-driven servers: returns
  /// bytes read (>0), 0 on orderly shutdown, -1 when the socket has no
  /// data right now (EAGAIN), -2 on a hard error.
  [[nodiscard]] long read_nowait(std::uint8_t* out, std::size_t max);

  /// Single non-blocking write attempt: returns bytes written (>= 0; 0
  /// when the socket buffer is full) or -1 on a hard error.
  [[nodiscard]] long write_nowait(std::string_view text);

  /// Writes the whole span (looping over partial writes). False on
  /// error/timeout.
  [[nodiscard]] bool write_all(std::span<const std::uint8_t> data, int timeout_ms);
  [[nodiscard]] bool write_all(std::string_view text, int timeout_ms);

  /// Reads exactly `n` bytes or fails.
  [[nodiscard]] bool read_exact(std::uint8_t* out, std::size_t n, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Loopback listener. bind_and_listen(0) picks an ephemeral port, exposed
/// via port() — the tests and the check.sh smoke run this way so parallel
/// CI jobs never collide.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  core::Status bind_and_listen(std::uint16_t port, int backlog = 16);
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool listening() const { return fd_ >= 0; }

  /// Waits up to timeout_ms for a connection. Returns an invalid stream
  /// on timeout or after close().
  [[nodiscard]] TcpStream accept_conn(int timeout_ms);
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// be32 length-prefixed frames over a stream — the control channel's
/// outer framing (handshake flights and sealed records both travel as one
/// frame each). `max_len` bounds a malicious length prefix.
[[nodiscard]] bool write_frame(TcpStream& stream, std::span<const std::uint8_t> payload,
                               int timeout_ms);
/// nullopt on timeout, orderly close, I/O error or oversized prefix.
[[nodiscard]] std::optional<core::Bytes> read_frame(TcpStream& stream, int timeout_ms,
                                                    std::size_t max_len = 1 << 20);

}  // namespace agrarsec::net
