#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace agrarsec::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 9110 token characters (header names, methods).
bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  return std::string_view{"!#$%&'*+-.^_`|~"}.find(c) != std::string_view::npos;
}

bool is_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
}

}  // namespace

// --- HttpRequest -----------------------------------------------------------

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::path() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query_param(std::string_view key) const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view rest = t.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return {};
}

// --- HttpResponse ----------------------------------------------------------

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += close_connection ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::json(std::string body) {
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::error(int status, std::string_view code,
                                 std::string_view message) {
  HttpResponse r;
  r.status = status;
  r.body = "{\"error\":\"";
  append_json_escaped(r.body, code);
  r.body += "\",\"message\":\"";
  append_json_escaped(r.body, message);
  r.body += "\"}";
  r.close_connection = status >= 400;
  return r;
}

// --- HttpRequestParser -----------------------------------------------------

HttpRequestParser::Status HttpRequestParser::poll(HttpRequest& request) {
  // Request line.
  const std::size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) {
    return buffer_.size() > limits_.max_request_line ? fail(414) : Status::kNeedMore;
  }
  if (line_end > limits_.max_request_line) return fail(414);

  const std::string_view line{buffer_.data(), line_end};
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400);
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method)) return fail(400);
  if (method != "GET" && method != "POST" && method != "HEAD") return fail(405);
  // Origin-form targets only; strict enough for a console.
  if (target.empty() || target.front() != '/') return fail(400);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return fail(400);

  // Header block.
  const std::size_t headers_begin = line_end + 2;
  const std::size_t block_end = buffer_.find("\r\n\r\n", line_end);
  if (block_end == std::string::npos) {
    return buffer_.size() - headers_begin > limits_.max_header_bytes
               ? fail(431)
               : Status::kNeedMore;
  }
  if (block_end + 4 - headers_begin > limits_.max_header_bytes) return fail(431);

  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t pos = headers_begin;
  while (pos < block_end) {
    std::size_t eol = buffer_.find("\r\n", pos);
    if (eol > block_end) eol = block_end;
    const std::string_view header_line{buffer_.data() + pos, eol - pos};
    pos = eol + 2;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos) return fail(400);
    const std::string_view name = header_line.substr(0, colon);
    if (!is_token(name)) return fail(400);  // also rejects obs-fold leading WS
    if (headers.size() >= limits_.max_header_count) return fail(431);
    headers.emplace_back(std::string(name),
                         std::string(trim_ows(header_line.substr(colon + 1))));
  }

  // Body: Content-Length only. Transfer codings are out of scope for the
  // console; reject instead of misinterpreting.
  std::size_t content_length = 0;
  for (const auto& [name, value] : headers) {
    if (iequals(name, "Transfer-Encoding")) return fail(501);
    if (iequals(name, "Content-Length")) {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(),
                       [](char c) { return std::isdigit(static_cast<unsigned char>(c)); }) ||
          value.size() > 10) {
        return fail(400);
      }
      content_length = static_cast<std::size_t>(std::stoull(value));
      if (content_length > limits_.max_body_bytes) return fail(413);
    }
  }

  const std::size_t body_begin = block_end + 4;
  if (buffer_.size() - body_begin < content_length) return Status::kNeedMore;

  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);
  request.headers = std::move(headers);
  request.body = buffer_.substr(body_begin, content_length);
  buffer_.erase(0, body_begin + content_length);  // keep pipelined follow-ups
  return Status::kComplete;
}

// --- HttpServer ------------------------------------------------------------

core::Status HttpServer::start(Handler handler) {
  if (running()) return core::make_error("running", "server already started");
  if (!handler) return core::make_error("no_handler", "handler required");
  handler_ = std::move(handler);
  if (auto status = listener_.bind_and_listen(config_.port); !status.ok()) {
    return status;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return core::Status::ok_status();
}

void HttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void HttpServer::serve_loop() {
  // Short accept timeout so the stop flag is observed promptly; a live
  // connection is bounded by io_timeout_ms per read and the per-connection
  // request cap.
  while (!stop_.load(std::memory_order_relaxed)) {
    TcpStream conn = listener_.accept_conn(50);
    if (!conn.valid()) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    serve_connection(std::move(conn));
  }
}

void HttpServer::serve_connection(TcpStream stream) {
  HttpRequestParser parser{config_.limits};
  std::uint8_t chunk[4096];
  int served = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         served < config_.max_requests_per_connection) {
    HttpRequest request;
    const HttpRequestParser::Status st = parser.poll(request);
    if (st == HttpRequestParser::Status::kError) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      const auto response = HttpResponse::error(parser.error_status(), "bad_request",
                                                "malformed HTTP request");
      (void)stream.write_all(response.serialize(), config_.io_timeout_ms);
      return;
    }
    if (st == HttpRequestParser::Status::kNeedMore) {
      const long n = stream.read_some(chunk, sizeof(chunk), config_.io_timeout_ms);
      if (n <= 0) return;  // timeout, error or orderly close
      parser.append(std::string_view{reinterpret_cast<const char*>(chunk),
                                     static_cast<std::size_t>(n)});
      continue;
    }
    HttpResponse response = handler_(request);
    const bool head = request.method == "HEAD";
    if (request.version == "HTTP/1.0" ||
        iequals(request.header("Connection"), "close")) {
      response.close_connection = true;
    }
    std::string wire = response.serialize();
    if (head) wire.resize(wire.size() - response.body.size());
    // Count before the write: a client that has read the response must
    // already observe it in requests_served().
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!stream.write_all(wire, config_.io_timeout_ms)) return;
    ++served;
    if (response.close_connection) return;
  }
}

}  // namespace agrarsec::net
