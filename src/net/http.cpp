#include "net/http.h"

#include <poll.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <memory>

namespace agrarsec::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 9110 token characters (header names, methods).
bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  return std::string_view{"!#$%&'*+-.^_`|~"}.find(c) != std::string_view::npos;
}

bool is_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
  }
}

/// Wall-clock now for connection deadlines and stream pacing. This layer
/// is wall-side observability plumbing — nothing here feeds deterministic
/// exports.
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// --- HttpRequest -----------------------------------------------------------

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::path() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query_param(std::string_view key) const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  if (q == std::string_view::npos) return {};
  std::string_view rest = t.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return {};
}

// --- HttpResponse ----------------------------------------------------------

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += close_connection ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  out += "\r\n\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::json(std::string body) {
  HttpResponse r;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain";
  r.body = std::move(body);
  return r;
}

std::string HttpResponse::serialize_stream_head() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " ";
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  // No Content-Length: the payload is open-ended; the stream ends by
  // disconnect (ours on pump exhaustion, or the subscriber hanging up).
  out += "\r\nCache-Control: no-store\r\nConnection: close\r\n\r\n";
  return out;
}

HttpResponse HttpResponse::event_stream(StreamPump pump) {
  HttpResponse r;
  r.content_type = "text/event-stream";
  r.stream = std::move(pump);
  return r;
}

HttpResponse HttpResponse::error(int status, std::string_view code,
                                 std::string_view message) {
  HttpResponse r;
  r.status = status;
  r.body = "{\"error\":\"";
  append_json_escaped(r.body, code);
  r.body += "\",\"message\":\"";
  append_json_escaped(r.body, message);
  r.body += "\"}";
  r.close_connection = status >= 400;
  return r;
}

// --- HttpRequestParser -----------------------------------------------------

HttpRequestParser::Status HttpRequestParser::poll(HttpRequest& request) {
  // Request line.
  const std::size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) {
    return buffer_.size() > limits_.max_request_line ? fail(414) : Status::kNeedMore;
  }
  if (line_end > limits_.max_request_line) return fail(414);

  const std::string_view line{buffer_.data(), line_end};
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400);
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method)) return fail(400);
  if (method != "GET" && method != "POST" && method != "HEAD") return fail(405);
  // Origin-form targets only; strict enough for a console.
  if (target.empty() || target.front() != '/') return fail(400);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return fail(400);

  // Header block.
  const std::size_t headers_begin = line_end + 2;
  const std::size_t block_end = buffer_.find("\r\n\r\n", line_end);
  if (block_end == std::string::npos) {
    return buffer_.size() - headers_begin > limits_.max_header_bytes
               ? fail(431)
               : Status::kNeedMore;
  }
  if (block_end + 4 - headers_begin > limits_.max_header_bytes) return fail(431);

  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t pos = headers_begin;
  while (pos < block_end) {
    std::size_t eol = buffer_.find("\r\n", pos);
    if (eol > block_end) eol = block_end;
    const std::string_view header_line{buffer_.data() + pos, eol - pos};
    pos = eol + 2;
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos) return fail(400);
    const std::string_view name = header_line.substr(0, colon);
    if (!is_token(name)) return fail(400);  // also rejects obs-fold leading WS
    if (headers.size() >= limits_.max_header_count) return fail(431);
    headers.emplace_back(std::string(name),
                         std::string(trim_ows(header_line.substr(colon + 1))));
  }

  // Body: Content-Length only. Transfer codings are out of scope for the
  // console; reject instead of misinterpreting.
  std::size_t content_length = 0;
  for (const auto& [name, value] : headers) {
    if (iequals(name, "Transfer-Encoding")) return fail(501);
    if (iequals(name, "Content-Length")) {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(),
                       [](char c) { return std::isdigit(static_cast<unsigned char>(c)); }) ||
          value.size() > 10) {
        return fail(400);
      }
      content_length = static_cast<std::size_t>(std::stoull(value));
      if (content_length > limits_.max_body_bytes) return fail(413);
    }
  }

  const std::size_t body_begin = block_end + 4;
  if (buffer_.size() - body_begin < content_length) return Status::kNeedMore;

  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);
  request.headers = std::move(headers);
  request.body = buffer_.substr(body_begin, content_length);
  buffer_.erase(0, body_begin + content_length);  // keep pipelined follow-ups
  return Status::kComplete;
}

// --- HttpServer ------------------------------------------------------------

core::Status HttpServer::start(Handler handler) {
  if (running()) return core::make_error("running", "server already started");
  if (!handler) return core::make_error("no_handler", "handler required");
  handler_ = std::move(handler);
  if (auto status = listener_.bind_and_listen(config_.port); !status.ok()) {
    return status;
  }
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return core::Status::ok_status();
}

void HttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void HttpServer::serve_loop() {
  // Poll-driven connection set: one pollfd for the listener plus one per
  // live connection. Every tick accepts pending connections (bounded by
  // max_connections with a deterministic 503 beyond it), drains readable
  // sockets through each connection's own parser, runs stream pumps, and
  // flushes pending output — no connection can block another.
  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    for (const auto& conn : conns) {
      short events = POLLIN;
      if (conn->has_pending_out()) events |= POLLOUT;
      fds.push_back(pollfd{conn->stream.fd(), events, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          config_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;
    const std::uint64_t now = wall_now_ns();

    if ((fds[0].revents & POLLIN) != 0) accept_pending(conns, now);

    // Service connections; fds[i + 1] corresponds to conns[i]. Accepts
    // were appended after the fds snapshot, so a fresh connection gets
    // its first input service on the next tick.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Connection& conn = *conns[i];
      bool keep = true;
      const std::size_t fd_index = i + 1;
      if (fd_index < fds.size() &&
          (fds[fd_index].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        keep = service_input(conn, now);
      }
      if (keep) keep = service_output(conn, now);
      if (keep) conns[kept++] = std::move(conns[i]);
    }
    conns.resize(kept);
  }
}

void HttpServer::accept_pending(
    std::vector<std::unique_ptr<Connection>>& conns, std::uint64_t now) {
  for (;;) {
    TcpStream stream = listener_.accept_conn(0);
    if (!stream.valid()) return;
    if (conns.size() >= config_.max_connections) {
      // Deterministic rejection: every over-limit connection gets the
      // same 503 and an immediate close (tiny write into an empty socket
      // buffer — never blocks the loop in practice).
      rejected_.fetch_add(1, std::memory_order_relaxed);
      const auto response = HttpResponse::error(
          503, "overloaded", "console connection limit reached");
      (void)stream.write_all(response.serialize(), config_.io_timeout_ms);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    conns.push_back(
        std::make_unique<Connection>(std::move(stream), config_.limits, now));
  }
}

bool HttpServer::service_input(Connection& conn, std::uint64_t now) {
  std::uint8_t chunk[4096];
  for (;;) {
    const long n = conn.stream.read_nowait(chunk, sizeof(chunk));
    if (n == -1) break;   // drained for now
    if (n == -2) return false;
    if (n == 0) {
      // Peer closed its write side. Flush whatever is queued, then drop;
      // a mid-stream disconnect lands here too.
      conn.close_after_flush = true;
      return conn.has_pending_out();
    }
    conn.idle_since_ns = now;
    if (conn.pump || conn.close_after_flush) continue;  // discard input
    conn.parser.append(std::string_view{reinterpret_cast<const char*>(chunk),
                                        static_cast<std::size_t>(n)});
  }
  while (!conn.pump && !conn.close_after_flush) {
    HttpRequest request;
    const HttpRequestParser::Status st = conn.parser.poll(request);
    if (st == HttpRequestParser::Status::kNeedMore) break;
    if (st == HttpRequestParser::Status::kError) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      const auto response = HttpResponse::error(
          conn.parser.error_status(), "bad_request", "malformed HTTP request");
      conn.outbuf += response.serialize();
      conn.close_after_flush = true;
      break;
    }
    answer(conn, request);
  }
  return true;
}

void HttpServer::answer(Connection& conn, const HttpRequest& request) {
  HttpResponse response = handler_(request);
  const bool head = request.method == "HEAD";
  if (request.version == "HTTP/1.0" ||
      iequals(request.header("Connection"), "close")) {
    response.close_connection = true;
  }
  // Count before the flush: a client that has read the response must
  // already observe it in requests_served().
  requests_.fetch_add(1, std::memory_order_relaxed);
  ++conn.served;
  if (response.stream) {
    conn.outbuf += response.serialize_stream_head();
    if (head) {
      conn.close_after_flush = true;
      return;
    }
    streams_.fetch_add(1, std::memory_order_relaxed);
    conn.pump = std::move(response.stream);
    return;  // pipelined follow-ups after a stream are ignored
  }
  std::string wire = response.serialize();
  if (head) wire.resize(wire.size() - response.body.size());
  conn.outbuf += wire;
  if (response.close_connection ||
      conn.served >= config_.max_requests_per_connection) {
    conn.close_after_flush = true;
  }
}

bool HttpServer::service_output(Connection& conn, std::uint64_t now) {
  if (conn.pump && !conn.close_after_flush) {
    if (!conn.pump(conn.outbuf)) conn.close_after_flush = true;
    if (conn.outbuf.size() - conn.out_off > config_.max_outbuf_bytes) {
      // Bounded subscriber lag: the reader fell further behind than the
      // output cap allows — cut it rather than buffer without limit.
      overruns_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  if (conn.has_pending_out()) {
    const long n = conn.stream.write_nowait(
        std::string_view{conn.outbuf}.substr(conn.out_off));
    if (n < 0) return false;
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.idle_since_ns = now;
    }
    if (!conn.has_pending_out()) {
      conn.outbuf.clear();
      conn.out_off = 0;
    }
  }
  if (conn.close_after_flush && !conn.has_pending_out()) return false;
  // Idle / slow-loris cutoff (wall-clock deadline). Streaming connections
  // are exempt: the server is the writer there.
  if (!conn.pump && !conn.close_after_flush &&
      now - conn.idle_since_ns >
          static_cast<std::uint64_t>(config_.io_timeout_ms) * 1000000ull) {
    if (conn.parser.buffered() > 0) {
      const auto response = HttpResponse::error(
          408, "timeout", "request not completed in time");
      conn.outbuf += response.serialize();
    }
    conn.close_after_flush = true;
    return conn.has_pending_out();
  }
  return true;
}

}  // namespace agrarsec::net
