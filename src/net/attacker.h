// Attacker node models, implementing the attack classes the paper's survey
// (§IV-C) transfers from the mining/automotive domains to forestry:
//   - passive sniffing (confidentiality of operations, Table I)
//   - message spoofing (e.g., forged e-stop/mission commands)
//   - replay of captured frames (e.g., stale "all clear" detections)
//   - flooding / channel-utilization abuse (DoS)
// Jamming and de-auth are physical/link-layer and live in RadioMedium.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/rng.h"
#include "net/message.h"
#include "net/radio.h"

namespace agrarsec::net {

/// Attacker capability profile, aligned with the IEC 62443 threat-actor
/// levels (SL1 casual ... SL4 nation-state-ish). Risk benches sweep this.
struct AttackerProfile {
  bool can_sniff = true;
  bool can_spoof = false;
  bool can_replay = false;
  bool can_flood = false;
  bool can_jam = false;
  bool can_drop = false;      ///< de-auth style targeted drops
  bool can_forge_crypto = false;  ///< break AEAD/signatures (never true; SL ceiling)
};

/// Maps IEC 62443 security-level style attacker tiers to capabilities.
[[nodiscard]] AttackerProfile attacker_profile_for_level(int level);

/// An attacker with a radio. Attach to the medium like a normal node;
/// additionally it taps the medium sniffer for promiscuous capture.
class AttackerNode {
 public:
  AttackerNode(NodeId id, core::Vec2 position, core::Rng rng, AttackerProfile profile);

  /// Wires the attacker into the medium (registers endpoint + sniffer tap).
  void attach(RadioMedium& medium);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const AttackerProfile& profile() const { return profile_; }

  /// Number of captured frames available for replay.
  [[nodiscard]] std::size_t captured_count() const { return captured_.size(); }

  /// Injects a forged plaintext message claiming `spoofed_sender`.
  /// Returns false when the profile forbids spoofing.
  bool spoof(RadioMedium& medium, core::SimTime now, std::uint64_t spoofed_sender,
             MessageType type, core::Bytes body, NodeId dst = NodeId::invalid());

  /// Replays the most recent captured frame matching `filter` (nullptr =
  /// any). With `refresh_timestamp`, the attacker additionally rewrites
  /// the application timestamp to `now` before transmitting — possible
  /// only for plaintext payloads (an AEAD record's authenticated content
  /// cannot be modified, which is exactly the defence being measured).
  /// Returns false when nothing matches or not capable.
  bool replay_latest(RadioMedium& medium, core::SimTime now,
                     const std::function<bool(const Frame&)>& filter = nullptr,
                     bool refresh_timestamp = false);

  /// Sends `count` junk frames on `channel` (flooding / channel abuse).
  bool flood(RadioMedium& medium, core::SimTime now, std::uint32_t channel,
             std::size_t count);

  /// Total frames this attacker has injected (spoof+replay+flood).
  [[nodiscard]] std::uint64_t injected_count() const { return injected_; }

 private:
  NodeId id_;
  core::Vec2 position_;
  core::Rng rng_;
  AttackerProfile profile_;
  std::deque<Frame> captured_;
  std::uint64_t injected_ = 0;
  std::uint64_t spoof_sequence_ = 1;

  static constexpr std::size_t kCaptureLimit = 4096;
};

}  // namespace agrarsec::net
