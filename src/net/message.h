// Application-level message format carried in radio frames. This is the
// *insecure* baseline wire format (plaintext, unauthenticated) — exactly
// what the attacker models exploit; the secure channel in src/secure wraps
// these messages in authenticated records, and the benches compare the
// two configurations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/bytes.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::net {

enum class MessageType : std::uint8_t {
  kHeartbeat = 0,
  kTelemetry = 1,         ///< position/speed/heading report
  kDetectionReport = 2,   ///< people-detection result (drone -> forwarder)
  kEstopCommand = 3,      ///< emergency stop request
  kEstopAck = 4,
  kMissionCommand = 5,    ///< route/task assignment (operator -> machine)
  kHandshake = 6,         ///< secure-channel handshake payload
  kSecureRecord = 7,      ///< AEAD record (payload is an encrypted Message)
  kFirmwareChunk = 8,
  kGnssCorrection = 9,
  kCrlUpdate = 10,
};

[[nodiscard]] std::string_view message_type_name(MessageType type);

struct Message {
  MessageType type = MessageType::kHeartbeat;
  std::uint64_t sender = 0;    ///< claimed sender id (spoofable in plaintext!)
  std::uint64_t sequence = 0;
  core::SimTime timestamp = 0;
  core::Bytes body;            ///< type-specific payload

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<Message> decode(std::span<const std::uint8_t> data);
};

/// Body codec for detection reports (drone/forwarder people detection).
struct DetectionBody {
  double x = 0.0;
  double y = 0.0;
  double confidence = 0.0;
  std::uint32_t track_id = 0;

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<DetectionBody> decode(std::span<const std::uint8_t> data);
};

/// Body codec for telemetry.
struct TelemetryBody {
  double x = 0.0;
  double y = 0.0;
  double heading = 0.0;
  double speed = 0.0;

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<TelemetryBody> decode(std::span<const std::uint8_t> data);
};

/// Body codec for e-stop commands.
struct EstopBody {
  std::uint32_t reason = 0;  ///< stable reason codes (safety::EstopReason)
  std::uint64_t target = 0;  ///< machine id value, 0 = all

  [[nodiscard]] core::Bytes encode() const;
  static std::optional<EstopBody> decode(std::span<const std::uint8_t> data);
};

}  // namespace agrarsec::net
