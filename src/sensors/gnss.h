// GNSS receiver model with the attack surface the paper's §IV-C transfers
// from the mining AHS literature: spoofing (position offset injection) and
// jamming (loss of fix). Under forest canopy the baseline accuracy is
// already degraded (canopy factor), which matters for how quickly a
// plausibility monitor can notice a spoofing drift.
#pragma once

#include <optional>

#include "core/geometry.h"
#include "core/rng.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::sensors {

struct GnssConfig {
  double noise_sigma_m = 0.8;       ///< open-sky 1-sigma error
  double canopy_factor = 2.5;       ///< multiplier under dense canopy
  double fix_probability = 0.995;   ///< per-epoch fix availability
};

struct GnssFix {
  core::Vec2 position;
  double hdop = 1.0;   ///< reported quality (spoofers fake good values)
  core::SimTime time = 0;
};

/// Attack state applied to one receiver.
struct GnssAttack {
  bool jam = false;
  core::Vec2 spoof_offset{};        ///< constant offset once locked
  double spoof_drift_mps = 0.0;     ///< slow walk-off (harder to detect)
  core::Vec2 spoof_drift_dir{1.0, 0.0};  ///< walk-off direction (unit-ish)
  bool active_spoof = false;
};

class GnssReceiver {
 public:
  GnssReceiver(SensorId id, GnssConfig config);

  void set_attack(GnssAttack attack);
  [[nodiscard]] const GnssAttack& attack() const { return attack_; }

  /// One epoch. Returns nullopt when jammed or no fix this epoch.
  [[nodiscard]] std::optional<GnssFix> fix(core::Vec2 true_position,
                                           core::SimTime now, core::Rng& rng);

  [[nodiscard]] SensorId id() const { return id_; }

 private:
  SensorId id_;
  GnssConfig config_;
  GnssAttack attack_;
  core::SimTime spoof_started_ = 0;
  bool spoof_running_ = false;
};

/// Plausibility monitor cross-checking GNSS against dead reckoning
/// (odometry). Flags when the innovation exceeds a gate — the standard
/// anti-spoofing defence Ren et al. (paper ref [27]) list as "checking
/// signal characteristics" at the application level.
class GnssPlausibilityMonitor {
 public:
  explicit GnssPlausibilityMonitor(double gate_m = 6.0);

  /// Feeds a fix plus the dead-reckoned position; returns true when the
  /// discrepancy breaches the gate (possible spoofing).
  bool check(const GnssFix& fix, core::Vec2 dead_reckoned);

  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  double gate_m_;
  std::uint64_t violations_ = 0;
};

}  // namespace agrarsec::sensors
