// Common detection record produced by perception sensors and consumed by
// the safety fusion layer (and serialized into net::DetectionBody when a
// drone reports over the radio link).
#pragma once

#include <cstdint>

#include "core/geometry.h"
#include "core/time.h"
#include "core/types.h"

namespace agrarsec::sensors {

struct Detection {
  HumanId target;              ///< ground-truth id (invalid for ghosts)
  core::Vec2 position;         ///< estimated planar position
  double confidence = 0.0;     ///< [0,1]
  SensorId source;
  core::SimTime time = 0;
  bool ghost = false;          ///< injected by a sensor attack
};

}  // namespace agrarsec::sensors
