// People-perception sensors (LiDAR / camera) mounted on machines. The
// model captures the properties the paper's Figure 2 experiment turns on:
//   - occlusion: detection requires 3D line of sight through the terrain,
//     so a ground-level forwarder mast is blocked by boulders/brush/stems
//     while a drone at altitude sees over them;
//   - range/weather: per-modality effective range shrinks in rain/fog/snow
//     (Hasirlioglu & Riener-style degradation, paper ref [19]);
//   - attacks: camera blinding and LiDAR ghost injection (Petit et al.,
//     paper ref [28]).
#pragma once

#include <optional>
#include <vector>

#include "core/rng.h"
#include "sensors/detection.h"
#include "sim/machine.h"
#include "sim/terrain.h"
#include "sim/weather.h"
#include "sim/worksite.h"

namespace agrarsec::sensors {

enum class Modality : std::uint8_t { kLidar = 0, kCamera = 1 };

[[nodiscard]] std::string_view modality_name(Modality modality);

/// Per-modality weather degradation.
[[nodiscard]] sim::WeatherEffect weather_effect(Modality modality, sim::Weather weather);

struct PerceptionConfig {
  Modality modality = Modality::kLidar;
  double range_m = 40.0;
  double fov_rad = 6.283185307179586;  ///< full circle for spinning lidar
  double base_detect_prob = 0.97;      ///< per frame, close range, clear LOS
  double confidence_floor = 0.55;
  double position_noise_m = 0.35;
};

/// Active attack state against one sensor.
struct SensorAttack {
  bool blind = false;           ///< camera dazzle / lidar saturation
  std::uint32_t ghosts = 0;     ///< spoofed returns per frame
  double ghost_radius_m = 25.0; ///< ghosts appear within this radius
};

class PerceptionSensor {
 public:
  PerceptionSensor(SensorId id, PerceptionConfig config);

  [[nodiscard]] SensorId id() const { return id_; }
  [[nodiscard]] const PerceptionConfig& config() const { return config_; }

  void set_attack(SensorAttack attack) { attack_ = attack; }
  [[nodiscard]] const SensorAttack& attack() const { return attack_; }

  /// One sensing frame from `carrier`'s pose at `now`. Humans are
  /// detectable when: within weather-adjusted range, inside the FOV, and
  /// with 3D line of sight from the sensor origin. Each visible human is
  /// detected with a distance-decaying probability.
  ///
  /// Implementation streams the worksite's SoA hot state and resolves all
  /// of the frame's sight lines through Terrain::occlusion_cause_batch
  /// (one bundle per frame) — bit-identical to the per-ray scan it
  /// replaced: the range/FOV/LOS filters draw no randomness, and the
  /// per-candidate RNG rolls still happen in ascending human-id order.
  /// Uses mutable per-frame scratch, so a sensor instance is not
  /// thread-safe (matches the rest of the simulation core).
  [[nodiscard]] std::vector<Detection> sense(const sim::Worksite& site,
                                             const sim::Machine& carrier,
                                             core::SimTime now, core::Rng& rng) const;

 private:
  SensorId id_;
  PerceptionConfig config_;
  SensorAttack attack_;
  // Per-frame scratch (allocation-free after warmup): candidate human
  // slots surviving range+FOV, their precomputed distances, the bundled
  // sight lines and their resolved causes.
  mutable std::vector<std::uint32_t> slot_scratch_;
  mutable std::vector<double> dist_scratch_;
  mutable std::vector<sim::Terrain::LosTarget> ray_scratch_;
  mutable std::vector<sim::Terrain::OcclusionCause> cause_scratch_;
};

}  // namespace agrarsec::sensors
