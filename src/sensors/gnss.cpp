#include "sensors/gnss.h"

namespace agrarsec::sensors {

GnssReceiver::GnssReceiver(SensorId id, GnssConfig config) : id_(id), config_(config) {}

void GnssReceiver::set_attack(GnssAttack attack) {
  attack_ = attack;
  spoof_running_ = false;
}

std::optional<GnssFix> GnssReceiver::fix(core::Vec2 true_position, core::SimTime now,
                                         core::Rng& rng) {
  if (attack_.jam) return std::nullopt;
  if (!rng.chance(config_.fix_probability)) return std::nullopt;

  const double sigma = config_.noise_sigma_m * config_.canopy_factor;
  core::Vec2 measured = true_position +
                        core::Vec2{rng.normal(0, sigma), rng.normal(0, sigma)};

  if (attack_.active_spoof) {
    if (!spoof_running_) {
      spoof_running_ = true;
      spoof_started_ = now;
    }
    const double t = static_cast<double>(now - spoof_started_) / core::kSecond;
    const core::Vec2 drift =
        attack_.spoof_drift_dir.normalized() * (attack_.spoof_drift_mps * t);
    measured = measured + attack_.spoof_offset + drift;
  }

  GnssFix out;
  out.position = measured;
  // Spoofers advertise excellent quality; honest degraded fixes report it.
  out.hdop = attack_.active_spoof ? 0.8 : config_.canopy_factor;
  out.time = now;
  return out;
}

GnssPlausibilityMonitor::GnssPlausibilityMonitor(double gate_m) : gate_m_(gate_m) {}

bool GnssPlausibilityMonitor::check(const GnssFix& fix, core::Vec2 dead_reckoned) {
  const double innovation = core::distance(fix.position, dead_reckoned);
  if (innovation > gate_m_) {
    ++violations_;
    return true;
  }
  return false;
}

}  // namespace agrarsec::sensors
