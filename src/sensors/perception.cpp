#include "sensors/perception.h"

#include <cmath>
#include <numbers>

namespace agrarsec::sensors {

std::string_view modality_name(Modality modality) {
  switch (modality) {
    case Modality::kLidar: return "lidar";
    case Modality::kCamera: return "camera";
  }
  return "?";
}

sim::WeatherEffect weather_effect(Modality modality, sim::Weather weather) {
  using sim::Weather;
  if (modality == Modality::kLidar) {
    switch (weather) {
      case Weather::kClear: return {1.0, 0.0};
      case Weather::kRain: return {0.85, 0.03};
      case Weather::kFog: return {0.70, 0.06};
      case Weather::kSnow: return {0.60, 0.10};
    }
  } else {
    switch (weather) {
      case Weather::kClear: return {1.0, 0.0};
      case Weather::kRain: return {0.75, 0.05};
      case Weather::kFog: return {0.45, 0.15};
      case Weather::kSnow: return {0.65, 0.08};
    }
  }
  return {1.0, 0.0};
}

PerceptionSensor::PerceptionSensor(SensorId id, PerceptionConfig config)
    : id_(id), config_(config) {}

std::vector<Detection> PerceptionSensor::sense(const sim::Worksite& site,
                                               const sim::Machine& carrier,
                                               core::SimTime now,
                                               core::Rng& rng) const {
  std::vector<Detection> out;
  if (attack_.blind) {
    // A blinded sensor produces nothing (plus any injected ghosts below —
    // saturation attacks can coexist with spoofed returns).
  }

  const sim::WeatherEffect wx = weather_effect(config_.modality, site.weather());
  const double effective_range = config_.range_m * wx.range_factor;
  const core::Vec2 origin = carrier.position();
  const double origin_agl = carrier.sensor_agl();

  if (!attack_.blind) {
    // Pass 1 — candidate collection against the SoA hot state: indexed
    // range query (same candidate set and ascending-id visit order as the
    // old scan over humans(), so the RNG stream is unchanged), FOV
    // filter, and the frame's sight-line bundle. No RNG is drawn here.
    const sim::HumanHotState& people = site.human_hot();
    site.humans_within_slots(origin, effective_range, slot_scratch_);
    dist_scratch_.clear();
    ray_scratch_.clear();
    std::size_t kept = 0;
    const bool fov_limited = config_.fov_rad < 2.0 * std::numbers::pi - 1e-6;
    for (const std::uint32_t slot : slot_scratch_) {
      const core::Vec2 hpos = people.position(slot);
      if (fov_limited) {
        // FOV check (forward-looking cameras; spinning lidar is 2*pi).
        const core::Vec2 delta = hpos - origin;
        const double bearing = std::atan2(delta.y, delta.x);
        if (core::angular_distance(bearing, carrier.heading()) > config_.fov_rad / 2.0) {
          continue;
        }
      }
      slot_scratch_[kept++] = slot;
      dist_scratch_.push_back(core::distance(origin, hpos));
      // Sight line to the human's torso height.
      ray_scratch_.push_back({hpos, people.height[slot] * 0.7});
    }
    slot_scratch_.resize(kept);

    // Pass 2 — one batched LOS resolve for the whole frame.
    site.terrain().occlusion_cause_batch(origin, origin_agl, ray_scratch_,
                                         cause_scratch_);

    // Pass 3 — per-candidate detection rolls, ascending id order.
    for (std::size_t i = 0; i < slot_scratch_.size(); ++i) {
      if (cause_scratch_[i] != sim::Terrain::OcclusionCause::kNone) continue;
      const std::uint32_t slot = slot_scratch_[i];
      const core::Vec2 hpos = people.position(slot);

      // Distance-decaying per-frame detection probability.
      const double range_frac = dist_scratch_[i] / effective_range;
      double p = config_.base_detect_prob * (1.0 - 0.5 * range_frac * range_frac);
      p -= wx.extra_miss_probability;
      if (!rng.chance(std::max(0.0, p))) continue;

      Detection d;
      d.target = HumanId{people.id[slot]};
      d.position = hpos + core::Vec2{rng.normal(0, config_.position_noise_m),
                                     rng.normal(0, config_.position_noise_m)};
      d.confidence =
          std::max(config_.confidence_floor, 1.0 - 0.4 * range_frac -
                                                 wx.extra_miss_probability * 2.0);
      d.source = id_;
      d.time = now;
      out.push_back(d);
    }
  }

  // Spoofed ghost returns (LiDAR relay / camera adversarial patch).
  for (std::uint32_t g = 0; g < attack_.ghosts; ++g) {
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double radius = rng.uniform(2.0, attack_.ghost_radius_m);
    Detection d;
    d.target = HumanId::invalid();
    d.position = origin + core::Vec2{std::cos(angle), std::sin(angle)} * radius;
    d.confidence = rng.uniform(0.6, 0.95);
    d.source = id_;
    d.time = now;
    d.ghost = true;
    out.push_back(d);
  }
  return out;
}

}  // namespace agrarsec::sensors
