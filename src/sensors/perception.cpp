#include "sensors/perception.h"

#include <cmath>
#include <numbers>

namespace agrarsec::sensors {

std::string_view modality_name(Modality modality) {
  switch (modality) {
    case Modality::kLidar: return "lidar";
    case Modality::kCamera: return "camera";
  }
  return "?";
}

sim::WeatherEffect weather_effect(Modality modality, sim::Weather weather) {
  using sim::Weather;
  if (modality == Modality::kLidar) {
    switch (weather) {
      case Weather::kClear: return {1.0, 0.0};
      case Weather::kRain: return {0.85, 0.03};
      case Weather::kFog: return {0.70, 0.06};
      case Weather::kSnow: return {0.60, 0.10};
    }
  } else {
    switch (weather) {
      case Weather::kClear: return {1.0, 0.0};
      case Weather::kRain: return {0.75, 0.05};
      case Weather::kFog: return {0.45, 0.15};
      case Weather::kSnow: return {0.65, 0.08};
    }
  }
  return {1.0, 0.0};
}

PerceptionSensor::PerceptionSensor(SensorId id, PerceptionConfig config)
    : id_(id), config_(config) {}

std::vector<Detection> PerceptionSensor::sense(const sim::Worksite& site,
                                               const sim::Machine& carrier,
                                               core::SimTime now,
                                               core::Rng& rng) const {
  std::vector<Detection> out;
  if (attack_.blind) {
    // A blinded sensor produces nothing (plus any injected ghosts below —
    // saturation attacks can coexist with spoofed returns).
  }

  const sim::WeatherEffect wx = weather_effect(config_.modality, site.weather());
  const double effective_range = config_.range_m * wx.range_factor;
  const core::Vec2 origin = carrier.position();
  const double origin_agl = carrier.sensor_agl();

  if (!attack_.blind) {
    // Indexed range query: same candidate set and visit order (ascending
    // id) as the old scan over humans(), so the RNG stream is unchanged.
    for (const sim::Human* human : site.humans_within(origin, effective_range)) {
      const double dist = core::distance(origin, human->position());

      // FOV check (forward-looking cameras; spinning lidar is 2*pi).
      if (config_.fov_rad < 2.0 * std::numbers::pi - 1e-6) {
        const core::Vec2 delta = human->position() - origin;
        const double bearing = std::atan2(delta.y, delta.x);
        if (core::angular_distance(bearing, carrier.heading()) > config_.fov_rad / 2.0) {
          continue;
        }
      }

      // Occlusion: LOS from sensor origin to the human's torso height.
      if (!site.terrain().line_of_sight(origin, origin_agl, human->position(),
                                        human->height() * 0.7)) {
        continue;
      }

      // Distance-decaying per-frame detection probability.
      const double range_frac = dist / effective_range;
      double p = config_.base_detect_prob * (1.0 - 0.5 * range_frac * range_frac);
      p -= wx.extra_miss_probability;
      if (!rng.chance(std::max(0.0, p))) continue;

      Detection d;
      d.target = human->id();
      d.position = human->position() + core::Vec2{rng.normal(0, config_.position_noise_m),
                                                  rng.normal(0, config_.position_noise_m)};
      d.confidence =
          std::max(config_.confidence_floor, 1.0 - 0.4 * range_frac -
                                                 wx.extra_miss_probability * 2.0);
      d.source = id_;
      d.time = now;
      out.push_back(d);
    }
  }

  // Spoofed ghost returns (LiDAR relay / camera adversarial patch).
  for (std::uint32_t g = 0; g < attack_.ghosts; ++g) {
    const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double radius = rng.uniform(2.0, attack_.ghost_radius_m);
    Detection d;
    d.target = HumanId::invalid();
    d.position = origin + core::Vec2{std::cos(angle), std::sin(angle)} * radius;
    d.confidence = rng.uniform(0.6, 0.95);
    d.source = id_;
    d.time = now;
    d.ghost = true;
    out.push_back(d);
  }
  return out;
}

}  // namespace agrarsec::sensors
